"""Thin fleet router: consistent-hash request placement over shard servers.

:class:`ShardRouter` fronts N :class:`~repro.service.server.VerificationServer`
shards.  It owns **no keys, no suspects and no engine** — every request is
placed onto the shard that the :class:`~repro.service.fleet.hashring.HashRing`
assigns to its model fingerprint and forwarded byte-for-byte, so shard
responses (decisions included) pass through unmodified except for an added
``"shard"`` label.  Routing therefore never changes a decision: a fleet of
any size answers exactly what the single shard owning that model family
answers.

Surface (all JSON)::

    GET   /v1/fleet/healthz    router + per-shard liveness
    GET   /v1/fleet/stats      per-shard /v1/stats with a fleet roll-up
    GET   /v1/fleet/audit      merged occupancy audit (shard-stable digest)
    POST  /v1/fleet/register   route by the key's model fingerprint
    POST  /v1/fleet/suspects   route by the uploaded model's fingerprint
    POST  /v1/fleet/verify     route by suspect id (learned at upload) or
                               by an inline model's fingerprint

The unprefixed ``/v1/register``, ``/v1/suspects``, ``/v1/verify``,
``/v1/stats`` and ``/v1/healthz`` paths answer identically, so a plain
:class:`~repro.service.client.VerificationClient` (and ``repro loadgen``)
can point at the router as a drop-in single-server address.

Forwarding happens on executor threads (the stdlib HTTP client is
blocking); each thread keeps one keep-alive connection per shard, so a
closed-loop load generator reuses sockets across its whole request stream.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading
import time
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.keys import model_fingerprint
from repro.service.codec import key_from_wire, model_from_wire
from repro.service.fleet.audit import OccupancyAuditReport
from repro.service.fleet.hashring import HashRing
from repro.service.http import AsyncHttpServer, HttpError, Route
from repro.utils.logging import get_logger

__all__ = ["ShardRouter", "shard_labels"]

logger = get_logger("service.fleet.router")

_FORWARD_TIMEOUT_S = 120.0


def shard_labels(count: int) -> List[str]:
    """Canonical shard labels (``shard-0`` … ``shard-N-1``) for a fleet."""
    return [f"shard-{i}" for i in range(count)]


class _ShardConnections:
    """Per-executor-thread keep-alive connections to every shard.

    ``http.client`` connections are not thread-safe; giving each executor
    thread its own set (via ``threading.local``) keeps forwarding lock-free
    on the hot path while still reusing sockets.  All connections ever
    created are tracked so :meth:`close_all` can drop them at shutdown.
    """

    def __init__(self, timeout: float) -> None:
        self._timeout = timeout
        self._local = threading.local()
        self._all: List[http.client.HTTPConnection] = []
        self._all_lock = threading.Lock()

    def get(self, address: str) -> http.client.HTTPConnection:
        cache: Dict[str, http.client.HTTPConnection] = getattr(
            self._local, "conns", None
        ) or {}
        if not hasattr(self._local, "conns"):
            self._local.conns = cache
        conn = cache.get(address)
        if conn is None:
            host, _, port = address.rpartition(":")
            conn = http.client.HTTPConnection(host, int(port), timeout=self._timeout)
            cache[address] = conn
            with self._all_lock:
                self._all.append(conn)
        return conn

    def drop(self, address: str) -> None:
        """Discard this thread's (poisoned) connection to ``address``."""
        cache = getattr(self._local, "conns", None)
        if cache and address in cache:
            conn = cache.pop(address)
            try:
                conn.close()
            except Exception:
                pass

    def close_all(self) -> None:
        with self._all_lock:
            conns, self._all = self._all, []
        for conn in conns:
            try:
                conn.close()
            except Exception:
                pass


class ShardRouter(AsyncHttpServer):
    """Consistent-hash HTTP router over a fixed list of shard addresses.

    Parameters
    ----------
    shards:
        Shard addresses, ``"host:port"``, in shard-index order.
    host, port:
        Router bind address (port 0 picks a free port).
    replicas:
        Virtual nodes per shard on the hash ring.
    timeout:
        Per-forward socket timeout, seconds.
    max_routed_suspects:
        LRU bound on the suspect-id → shard routing memory.
    """

    def __init__(
        self,
        shards: Sequence[str],
        host: str = "127.0.0.1",
        port: int = 0,
        replicas: int = 64,
        timeout: float = _FORWARD_TIMEOUT_S,
        max_routed_suspects: int = 4096,
    ) -> None:
        if not shards:
            raise ValueError("ShardRouter needs at least one shard address")
        self.addresses = list(shards)
        self.labels = shard_labels(len(self.addresses))
        self.ring = HashRing(self.labels, replicas=replicas)
        self._address_of = dict(zip(self.labels, self.addresses))
        self._connections_pool = _ShardConnections(timeout)
        self._max_routed_suspects = int(max_routed_suspects)
        # suspect_id -> shard label, learned from /fleet/suspects uploads.
        self._suspect_shards: "OrderedDict[str, str]" = OrderedDict()
        self._suspect_lock = threading.Lock()
        # Router-side request accounting; touched only on the event-loop
        # thread (the _count hook), read by /v1/fleet/stats.
        self._stats: Dict[str, int] = {
            "requests_total": 0,
            "errors": 0,
            "rejected_rate_limit": 0,
            "rejected_queue_full": 0,
            "forwarded": 0,
            "shard_errors": 0,
        }
        super().__init__(host, port)

    # ------------------------------------------------------------------
    # Plumbing hooks / lifecycle
    # ------------------------------------------------------------------
    def _count(self, stat: str) -> None:
        if stat in self._stats:
            self._stats[stat] += 1

    async def start(self) -> None:
        await super().start()
        logger.info(
            "fleet router listening on %s:%d (%d shards)",
            self._host,
            self.port,
            len(self.addresses),
        )

    async def stop(self) -> None:
        await super().stop()
        self._connections_pool.close_all()

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def shard_for(self, fingerprint: str) -> str:
        """The shard label owning one model fingerprint."""
        return self.ring.node_for(fingerprint)

    def _remember_suspect(self, suspect_id: str, label: str) -> None:
        with self._suspect_lock:
            self._suspect_shards[suspect_id] = label
            self._suspect_shards.move_to_end(suspect_id)
            while len(self._suspect_shards) > self._max_routed_suspects:
                self._suspect_shards.popitem(last=False)

    def _shard_of_suspect(self, suspect_id: str) -> Optional[str]:
        with self._suspect_lock:
            label = self._suspect_shards.get(suspect_id)
            if label is not None:
                self._suspect_shards.move_to_end(suspect_id)
            return label

    # ------------------------------------------------------------------
    # Forwarding (blocking; always called through run_in_executor)
    # ------------------------------------------------------------------
    def _forward(
        self, label: str, method: str, path: str, body: Optional[bytes] = None
    ) -> Tuple[int, Dict[str, object]]:
        address = self._address_of[label]
        headers = {"Connection": "keep-alive"}
        if body:
            headers["Content-Type"] = "application/json"
        conn = self._connections_pool.get(address)
        try:
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        except Exception as exc:
            # Poisoned connection — drop it so the next call reconnects.
            self._connections_pool.drop(address)
            raise HttpError(
                502, f"shard {label} ({address}) unreachable: {exc}", counter="shard_errors"
            ) from exc
        try:
            parsed = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            parsed = {"error": {"code": "bad_gateway", "message": raw.decode("utf-8", "replace")}}
        if not isinstance(parsed, dict):
            parsed = {"result": parsed}
        return response.status, parsed

    async def _forward_async(
        self, label: str, method: str, path: str, body: Optional[bytes] = None
    ) -> Tuple[int, Dict[str, object]]:
        loop = asyncio.get_running_loop()
        status, payload = await loop.run_in_executor(
            None, self._forward, label, method, path, body
        )
        self._count("forwarded")
        if status >= 500:
            self._count("shard_errors")
        return status, payload

    async def _fan_out(self, method: str, path: str) -> List[Tuple[str, int, Dict[str, object]]]:
        """Issue one request to every shard concurrently; never raises —
        unreachable shards come back as their 502 envelope."""

        async def one(label: str) -> Tuple[str, int, Dict[str, object]]:
            try:
                status, payload = await self._forward_async(label, method, path)
            except HttpError as exc:
                from repro.service.http import error_envelope

                status, payload = exc.status, error_envelope(exc.status, str(exc), exc.code)
            return label, status, payload

        return list(await asyncio.gather(*(one(label) for label in self.labels)))

    # ------------------------------------------------------------------
    # Routing table
    # ------------------------------------------------------------------
    def _build_routes(self) -> List[Route]:
        fleet = [
            ("GET", "/v1/fleet/healthz", self._handle_healthz),
            ("GET", "/v1/fleet/stats", self._handle_stats),
            ("GET", "/v1/fleet/audit", self._handle_audit),
            ("POST", "/v1/fleet/register", self._handle_register),
            ("POST", "/v1/fleet/suspects", self._handle_suspects),
            ("POST", "/v1/fleet/verify", self._handle_verify),
        ]
        # Drop-in aliases: a plain VerificationClient pointed at the router
        # speaks the single-server surface and still gets fleet routing.
        aliases = [
            ("GET", "/v1/healthz", self._handle_healthz),
            ("GET", "/v1/stats", self._handle_stats),
            ("GET", "/v1/audit", self._handle_audit),
            ("POST", "/v1/register", self._handle_register),
            ("POST", "/v1/suspects", self._handle_suspects),
            ("POST", "/v1/verify", self._handle_verify),
        ]
        return [Route(m, p, h) for m, p, h in fleet + aliases]

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    async def _handle_healthz(self, _body, _params, query) -> Tuple[int, Dict[str, object]]:
        shards = await self._fan_out("GET", "/v1/healthz")
        shard_health = [
            {"shard": label, "address": self._address_of[label], "status": status,
             "ok": status == 200}
            for label, status, _payload in shards
        ]
        all_ok = all(entry["ok"] for entry in shard_health)
        payload: Dict[str, object] = {
            "status": "ok" if all_ok else "degraded",
            "uptime_seconds": time.time() - (self.started_at or time.time()),
            "shards": shard_health,
        }
        return (200 if all_ok else 503), payload

    async def _handle_stats(self, _body, _params, _query) -> Tuple[int, Dict[str, object]]:
        shards = await self._fan_out("GET", "/v1/stats")
        per_shard = []
        totals = {"verifications": 0, "decisions_owned": 0, "decisions_not_owned": 0,
                  "registry_keys": 0, "registry_resident": 0, "suspects": 0}
        reachable = 0
        for label, status, payload in shards:
            entry: Dict[str, object] = {
                "shard": label,
                "address": self._address_of[label],
                "ok": status == 200,
            }
            if status == 200:
                reachable += 1
                entry["stats"] = payload
                server = payload.get("server", {})
                registry = payload.get("registry", {})
                totals["verifications"] += int(server.get("verifications", 0))
                totals["decisions_owned"] += int(server.get("decisions_owned", 0))
                totals["decisions_not_owned"] += int(server.get("decisions_not_owned", 0))
                totals["registry_keys"] += int(registry.get("keys", 0))
                totals["registry_resident"] += int(registry.get("resident", 0))
                totals["suspects"] += int(payload.get("suspects", {}).get("count", 0))
            else:
                entry["error"] = payload.get("error")
            per_shard.append(entry)
        with self._suspect_lock:
            routed = len(self._suspect_shards)
        return 200, {
            "fleet": {
                "shards": len(self.labels),
                "reachable_shards": reachable,
                "router": dict(self._stats),
                "suspects_routed": routed,
                **totals,
            },
            "shards": per_shard,
        }

    async def _handle_audit(self, _body, _params, _query) -> Tuple[int, Dict[str, object]]:
        shards = await self._fan_out("GET", "/v1/audit")
        per_shard = []
        reports: List[OccupancyAuditReport] = []
        failed = False
        for label, status, payload in shards:
            entry: Dict[str, object] = {
                "shard": label,
                "address": self._address_of[label],
                "ok": status == 200,
            }
            if status == 200 and isinstance(payload.get("audit"), dict):
                shard_audit = payload["audit"]
                entry["digest"] = shard_audit.get("digest")
                entry["models"] = shard_audit.get("models")
                entry["collisions"] = shard_audit.get("collisions")
                reports.append(OccupancyAuditReport.from_dict(shard_audit))
            else:
                failed = True
                entry["error"] = payload.get("error")
            per_shard.append(entry)
        if failed:
            return 502, {
                "error": {"code": "bad_gateway", "message": "audit failed on some shards"},
                "shards": per_shard,
            }
        merged = OccupancyAuditReport.merge(reports)
        body = merged.to_dict()
        body["shards"] = per_shard
        return 200, {"audit": body}

    async def _handle_register(self, body, _params, _query) -> Tuple[int, Dict[str, object]]:
        payload = self._json_body(body)
        if "key" not in payload:
            raise HttpError(400, "missing 'key' payload")
        loop = asyncio.get_running_loop()
        # The fingerprint decides placement, so the router always derives it
        # from the key bytes itself — trusting a client hint could strand a
        # key on the wrong shard and silently break the partition invariant.
        try:
            key = await loop.run_in_executor(None, key_from_wire, payload["key"])
        except ValueError as exc:
            raise HttpError(400, f"invalid key payload: {exc}") from exc
        label = self.shard_for(key.model_fingerprint())
        status, parsed = await self._forward_async(label, "POST", "/v1/register", body)
        if status == 200:
            parsed["shard"] = label
            # Clients unwrap the "registered" record — label that too.
            registered = parsed.get("registered")
            if isinstance(registered, dict):
                registered["shard"] = label
        return status, parsed

    async def _handle_suspects(self, body, _params, _query) -> Tuple[int, Dict[str, object]]:
        payload = self._json_body(body)
        if "model" not in payload:
            raise HttpError(400, "missing 'model' payload")
        loop = asyncio.get_running_loop()
        try:
            model = await loop.run_in_executor(None, model_from_wire, payload["model"])
        except ValueError as exc:
            raise HttpError(400, f"invalid model payload: {exc}") from exc
        label = self.shard_for(model_fingerprint(model))
        status, parsed = await self._forward_async(label, "POST", "/v1/suspects", body)
        if status == 200:
            parsed["shard"] = label
            suspect_id = parsed.get("suspect_id")
            if isinstance(suspect_id, str) and suspect_id:
                self._remember_suspect(suspect_id, label)
        return status, parsed

    async def _handle_verify(self, body, _params, _query) -> Tuple[int, Dict[str, object]]:
        payload = self._json_body(body)
        if "model" in payload:
            loop = asyncio.get_running_loop()
            try:
                model = await loop.run_in_executor(None, model_from_wire, payload["model"])
            except ValueError as exc:
                raise HttpError(400, f"invalid model payload: {exc}") from exc
            label = self.shard_for(model_fingerprint(model))
        else:
            suspect_id = payload.get("suspect_id")
            if not isinstance(suspect_id, str) or not suspect_id:
                raise HttpError(400, "provide 'suspect_id' (uploaded) or inline 'model'")
            known = self._shard_of_suspect(suspect_id)
            if known is None:
                raise HttpError(
                    404,
                    f"unknown suspect id {suspect_id!r} — upload through the "
                    "fleet router so it learns the placement",
                    code="unknown_suspect",
                )
            label = known
        status, parsed = await self._forward_async(label, "POST", "/v1/verify", body)
        if status == 200:
            parsed["shard"] = label
        return status, parsed
