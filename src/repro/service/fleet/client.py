"""Client-side consistent-hash routing over a fleet of shard addresses.

:class:`FleetClient` holds one :class:`~repro.service.client.VerificationClient`
per shard and routes every call with the same
:class:`~repro.service.fleet.hashring.HashRing` the router uses (same labels,
same replica count), so it can drive the shards **directly** — no router hop
on the hot path.  ``repro loadgen --fleet`` uses exactly this placement.

Placement rules mirror the router's:

* ``register_key`` → the key's own model fingerprint,
* ``upload_suspect`` → the uploaded model's fingerprint (the client also
  remembers ``suspect_id → shard`` so later ``verify(suspect_id=...)``
  calls route without re-deriving anything),
* ``verify`` → the remembered suspect placement, or an inline model's
  fingerprint,
* ``stats`` / ``healthz`` / ``audit`` → fan-out with per-shard breakdown;
  ``audit`` merges the shard reports into one fleet digest.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.keys import WatermarkKey, model_fingerprint
from repro.quant.base import QuantizedModel
from repro.service.client import VerificationClient
from repro.service.fleet.audit import OccupancyAuditReport
from repro.service.fleet.hashring import HashRing
from repro.service.fleet.router import shard_labels

__all__ = ["FleetClient"]


class FleetClient:
    """Consistent-hash client over ``addresses`` (``"host:port"`` each).

    ``replicas`` must match the fleet's ring configuration — a mismatched
    ring routes to the wrong shard, which surfaces as "key not found"
    verifies, not silent corruption, but costs the round trip.
    """

    def __init__(
        self,
        addresses: Sequence[str],
        timeout: float = 60.0,
        replicas: int = 64,
    ) -> None:
        if not addresses:
            raise ValueError("FleetClient needs at least one shard address")
        self.addresses = list(addresses)
        self.labels = shard_labels(len(self.addresses))
        self.ring = HashRing(self.labels, replicas=replicas)
        self._clients: List[VerificationClient] = []
        for address in self.addresses:
            host, _, port = address.rpartition(":")
            self._clients.append(VerificationClient(host, int(port), timeout=timeout))
        self._suspect_shards: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def shard_for(self, fingerprint: str) -> int:
        """Index of the shard owning one model fingerprint."""
        return self.ring.index_for(fingerprint)

    def client_for(self, fingerprint: str) -> VerificationClient:
        """The shard client owning one model fingerprint."""
        return self._clients[self.shard_for(fingerprint)]

    @property
    def clients(self) -> List[VerificationClient]:
        return list(self._clients)

    # ------------------------------------------------------------------
    # Routed endpoints
    # ------------------------------------------------------------------
    def register_key(
        self,
        key: WatermarkKey,
        owner: str = "",
        metadata: Optional[Dict[str, object]] = None,
    ) -> Dict[str, object]:
        index = self.shard_for(key.model_fingerprint())
        record = self._clients[index].register_key(key, owner=owner, metadata=metadata)
        record["shard"] = self.labels[index]
        return record

    def upload_suspect(
        self,
        model: QuantizedModel,
        suspect_id: Optional[str] = None,
        rank: bool = False,
    ) -> Dict[str, object]:
        index = self.shard_for(model_fingerprint(model))
        response = self._clients[index].upload_suspect(model, suspect_id=suspect_id, rank=rank)
        response["shard"] = self.labels[index]
        returned_id = response.get("suspect_id")
        if isinstance(returned_id, str) and returned_id:
            self._suspect_shards[returned_id] = index
        return response

    def verify(
        self,
        suspect_id: Optional[str] = None,
        model: Optional[QuantizedModel] = None,
        key_ids: Optional[List[str]] = None,
        wer_threshold: Optional[float] = None,
        max_false_claim_probability: object = "unset",
    ) -> Dict[str, object]:
        if model is not None:
            index = self.shard_for(model_fingerprint(model))
        elif suspect_id is not None:
            known = self._suspect_shards.get(suspect_id)
            if known is None:
                raise KeyError(
                    f"unknown suspect id {suspect_id!r} — upload it through this "
                    "FleetClient so the placement is known"
                )
            index = known
        else:
            raise ValueError("provide suspect_id or model")
        response = self._clients[index].verify(
            suspect_id=suspect_id,
            model=model,
            key_ids=key_ids,
            wer_threshold=wer_threshold,
            max_false_claim_probability=max_false_claim_probability,
        )
        response["shard"] = self.labels[index]
        return response

    # ------------------------------------------------------------------
    # Fan-out endpoints
    # ------------------------------------------------------------------
    def healthz(self) -> Dict[str, object]:
        shards = []
        for label, client in zip(self.labels, self._clients):
            entry: Dict[str, object] = {"shard": label}
            try:
                entry["health"] = client.healthz()
                entry["ok"] = True
            except Exception as exc:
                entry["ok"] = False
                entry["error"] = str(exc)
            shards.append(entry)
        return {
            "status": "ok" if all(s["ok"] for s in shards) else "degraded",
            "shards": shards,
        }

    def stats(self) -> Dict[str, object]:
        """Per-shard ``/v1/stats`` plus fleet totals (same roll-up keys as
        the router's ``/v1/fleet/stats``)."""
        per_shard = []
        totals = {"verifications": 0, "decisions_owned": 0, "decisions_not_owned": 0,
                  "registry_keys": 0, "registry_resident": 0, "suspects": 0}
        for label, client in zip(self.labels, self._clients):
            stats = client.stats()
            per_shard.append({"shard": label, "stats": stats, "ok": True})
            server = stats.get("server", {})
            registry = stats.get("registry", {})
            totals["verifications"] += int(server.get("verifications", 0))
            totals["decisions_owned"] += int(server.get("decisions_owned", 0))
            totals["decisions_not_owned"] += int(server.get("decisions_not_owned", 0))
            totals["registry_keys"] += int(registry.get("keys", 0))
            totals["registry_resident"] += int(registry.get("resident", 0))
            totals["suspects"] += int(stats.get("suspects", {}).get("count", 0))
        return {"fleet": {"shards": len(self.labels), **totals}, "shards": per_shard}

    def audit(self) -> Dict[str, object]:
        """Fan out ``GET /v1/audit`` and merge into one fleet report dict."""
        reports = []
        per_shard = []
        for label, client in zip(self.labels, self._clients):
            payload = client._request("GET", "/v1/audit")["audit"]
            per_shard.append({
                "shard": label,
                "digest": payload.get("digest"),
                "models": payload.get("models"),
                "collisions": payload.get("collisions"),
            })
            reports.append(OccupancyAuditReport.from_dict(payload))
        merged = OccupancyAuditReport.merge(reports).to_dict()
        merged["shards"] = per_shard
        return merged

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        for client in self._clients:
            client.close()

    def __enter__(self) -> "FleetClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
