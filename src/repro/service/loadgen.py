"""Closed-loop load generator for the verification service.

Follows the shape of ``llm-load-test``: N concurrent users, each in a closed
loop (send a request, wait for the response, immediately send the next one),
driven either for a fixed duration or until a shared request budget is
exhausted, with structured latency/throughput output.

Each user thread owns one keep-alive :class:`VerificationClient` connection
and walks the configured request mix round-robin with a per-user stride, so
a hit/miss template mix is exercised evenly at every concurrency level.

Fleet mode (``LoadConfig.fleet``): instead of one server address, the config
carries the shard address list and every template its owning shard index
(client-side consistent-hash placement — the same ring the fleet router and
:class:`~repro.service.fleet.client.FleetClient` use).  Each user thread then
keeps one keep-alive connection *per shard* and the report gains a per-shard
latency/throughput breakdown (``shard_latency_ms`` / ``shard_timeseries``).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.service.client import (
    RateLimitedError,
    ServiceError,
    ServiceUnavailableError,
    VerificationClient,
)
from repro.utils.logging import get_logger

__all__ = [
    "RequestTemplate",
    "LoadConfig",
    "LoadReport",
    "run_load",
    "JobLoadConfig",
    "JobLoadReport",
    "run_job_load",
]

logger = get_logger("service.loadgen")


@dataclass(frozen=True)
class RequestTemplate:
    """One request shape in the load mix.

    Attributes
    ----------
    suspect_id:
        Id of a suspect snapshot already uploaded to the server.
    key_ids:
        Keys to check against (``None`` = every active key).
    label:
        Mix label carried into the per-request records (e.g. ``"hit"`` /
        ``"miss"``) so reports can split latency by request class.
    shard:
        Owning shard index in fleet mode (``LoadConfig.fleet``) — the index
        into the fleet address list where this suspect lives, as learned
        from the upload (``response["shard"]``) or
        :meth:`~repro.service.fleet.client.FleetClient.shard_for`.  Ignored
        (and must stay ``None``) against a single server.
    """

    suspect_id: str
    key_ids: Optional[tuple] = None
    label: str = ""
    shard: Optional[int] = None


@dataclass
class LoadConfig:
    """Parameters of one load run.

    ``total_requests`` is a budget of request *attempts*: rejected (429/503)
    and errored attempts consume it too, so a run against a rate-limited
    server always terminates.  Without admission control in play,
    ``completed == total_requests``.

    ``fleet`` switches to fleet mode: a list of shard addresses
    (``"host:port"`` each, shard-index order) that every template's
    ``shard`` field indexes into; ``host``/``port`` are then ignored.
    """

    host: str = "127.0.0.1"
    port: int = 8420
    concurrency: int = 4
    duration_seconds: Optional[float] = None
    total_requests: Optional[int] = None
    templates: List[RequestTemplate] = field(default_factory=list)
    timeout: float = 60.0
    collect_decisions: bool = True
    fleet: Optional[List[str]] = None

    def __post_init__(self) -> None:
        if self.concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if (self.duration_seconds is None) == (self.total_requests is None):
            raise ValueError("set exactly one of duration_seconds / total_requests")
        if not self.templates:
            raise ValueError("at least one request template is required")
        if self.fleet is not None:
            if not self.fleet:
                raise ValueError("fleet mode needs at least one shard address")
            for template in self.templates:
                if template.shard is None or not 0 <= template.shard < len(self.fleet):
                    raise ValueError(
                        f"template {template.suspect_id!r} needs a shard index in "
                        f"[0, {len(self.fleet)}) for fleet mode (got {template.shard!r})"
                    )


@dataclass
class LoadReport:
    """Aggregated outcome of one load run."""

    concurrency: int
    elapsed_seconds: float
    completed: int
    errors: int
    rate_limited: int
    unavailable: int
    throughput_rps: float
    latency_ms: Dict[str, float]
    per_label_completed: Dict[str, int]
    #: Client-side timeouts — a distinct failure class from generic transport
    #: errors: the server may still be burning CPU on the abandoned request.
    timeouts: int = 0
    #: Requests completed in each 1-second window of the run (requests/s),
    #: so a flat p95 cannot hide a sawtooth or a mid-run stall.
    throughput_timeseries: List[int] = field(default_factory=list)
    #: Fleet mode only: latency percentiles per shard label, so a slow or
    #: overloaded shard is visible even when the fleet-wide p95 looks fine.
    shard_latency_ms: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Fleet mode only: per-shard 1-second completion windows (same buckets
    #: as ``throughput_timeseries``), exposing placement imbalance over time.
    shard_timeseries: Dict[str, List[int]] = field(default_factory=dict)
    decisions: List[Dict[str, object]] = field(default_factory=list)

    @property
    def failed(self) -> int:
        """All attempts that did not complete: rejections, timeouts, errors."""
        return self.errors + self.rate_limited + self.unavailable + self.timeouts

    def to_dict(self) -> Dict[str, object]:
        """JSON-able form (``decisions`` excluded — they are bench-internal)."""
        return {
            "concurrency": self.concurrency,
            "elapsed_seconds": self.elapsed_seconds,
            "completed": self.completed,
            "errors": self.errors,
            "rate_limited": self.rate_limited,
            "unavailable": self.unavailable,
            "timeouts": self.timeouts,
            "failed": self.failed,
            "throughput_rps": self.throughput_rps,
            "throughput_timeseries": list(self.throughput_timeseries),
            "latency_ms": self.latency_ms,
            "per_label_completed": self.per_label_completed,
            "shard_latency_ms": {k: dict(v) for k, v in self.shard_latency_ms.items()},
            "shard_timeseries": {k: list(v) for k, v in self.shard_timeseries.items()},
        }

    def summary(self) -> str:
        """One-line human-readable summary."""
        lat = self.latency_ms
        return (
            f"{self.concurrency} users × {self.elapsed_seconds:.2f}s: "
            f"{self.completed} ok ({self.throughput_rps:.1f} req/s), "
            f"p50 {lat.get('p50', 0):.1f}ms p95 {lat.get('p95', 0):.1f}ms "
            f"p99 {lat.get('p99', 0):.1f}ms, "
            f"{self.rate_limited} rate-limited, {self.unavailable} unavailable, "
            f"{self.timeouts} timeouts, {self.errors} errors"
        )


def _latency_stats(latencies_ms: List[float]) -> Dict[str, float]:
    """Mean + percentile summary of one latency population (ms)."""
    if not latencies_ms:
        return {"mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}
    arr = np.asarray(latencies_ms)
    return {
        "mean": float(arr.mean()),
        "p50": float(np.percentile(arr, 50)),
        "p95": float(np.percentile(arr, 95)),
        "p99": float(np.percentile(arr, 99)),
        "max": float(arr.max()),
    }


class _Budget:
    """Shared request budget for ``total_requests`` mode."""

    def __init__(self, total: Optional[int]) -> None:
        self._remaining = total
        self._lock = threading.Lock()

    def take(self) -> bool:
        if self._remaining is None:
            return True
        with self._lock:
            if self._remaining <= 0:
                return False
            self._remaining -= 1
            return True


@dataclass
class _WorkerResult:
    latencies_ms: List[float] = field(default_factory=list)
    labels: List[str] = field(default_factory=list)
    shards: List[Optional[int]] = field(default_factory=list)
    completions: List[float] = field(default_factory=list)  # perf_counter stamps
    decisions: List[Dict[str, object]] = field(default_factory=list)
    errors: int = 0
    rate_limited: int = 0
    unavailable: int = 0
    timeouts: int = 0


def _worker_clients(config: LoadConfig) -> List[VerificationClient]:
    """One keep-alive client per target: the single server, or one per shard."""
    if config.fleet is None:
        return [VerificationClient(config.host, config.port, timeout=config.timeout)]
    clients = []
    for address in config.fleet:
        host, _, port = address.rpartition(":")
        clients.append(VerificationClient(host, int(port), timeout=config.timeout))
    return clients


def _worker(
    index: int,
    config: LoadConfig,
    stop: threading.Event,
    budget: _Budget,
    start_barrier: threading.Barrier,
    result: _WorkerResult,
) -> None:
    templates = config.templates
    clients = _worker_clients(config)
    cursor = index  # stride by concurrency → even template coverage per user
    try:
        start_barrier.wait(timeout=30.0)
        while not stop.is_set():
            if not budget.take():
                break
            template = templates[cursor % len(templates)]
            cursor += config.concurrency
            client = clients[template.shard or 0]
            begin = time.perf_counter()
            try:
                response = client.verify(
                    suspect_id=template.suspect_id,
                    key_ids=list(template.key_ids) if template.key_ids else None,
                )
            except RateLimitedError:
                result.rate_limited += 1
                continue
            except ServiceUnavailableError:
                result.unavailable += 1
                continue
            except TimeoutError:
                # socket.timeout is TimeoutError — a timed-out request may
                # still be running server-side, so it gets its own bucket.
                result.timeouts += 1
                continue
            except (ServiceError, OSError) as exc:
                result.errors += 1
                logger.debug("user %d request failed: %s", index, exc)
                continue
            done = time.perf_counter()
            result.latencies_ms.append((done - begin) * 1000.0)
            result.completions.append(done)
            result.labels.append(template.label)
            result.shards.append(template.shard)
            if config.collect_decisions:
                result.decisions.append(
                    {
                        "label": template.label,
                        "suspect_id": response["suspect_id"],
                        "decisions": response["decisions"],
                        "batch_size": response["batch_size"],
                    }
                )
    finally:
        for client in clients:
            client.close()


def run_load(config: LoadConfig) -> LoadReport:
    """Run one closed-loop load test and aggregate the results."""
    stop = threading.Event()
    budget = _Budget(config.total_requests)
    start_barrier = threading.Barrier(config.concurrency + 1)
    results = [_WorkerResult() for _ in range(config.concurrency)]
    threads = [
        threading.Thread(
            target=_worker,
            args=(i, config, stop, budget, start_barrier, results[i]),
            name=f"loadgen-{i}",
            daemon=True,
        )
        for i in range(config.concurrency)
    ]
    for thread in threads:
        thread.start()
    start_barrier.wait(timeout=30.0)
    started = time.perf_counter()
    if config.duration_seconds is not None:
        time.sleep(config.duration_seconds)
        stop.set()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started

    latencies = [lat for result in results for lat in result.latencies_ms]
    labels = [label for result in results for label in result.labels]
    shards = [shard for result in results for shard in result.shards]
    decisions = [d for result in results for d in result.decisions]
    completed = len(latencies)
    per_label: Dict[str, int] = {}
    for label in labels:
        per_label[label] = per_label.get(label, 0) + 1
    latency_ms = _latency_stats(latencies)
    # Per-second throughput: completion stamps bucketed into 1s windows from
    # the common start barrier, covering the whole run (trailing zeros kept).
    buckets = [0] * max(1, int(np.ceil(elapsed))) if elapsed > 0 else []
    for result in results:
        for stamp in result.completions:
            offset = int(stamp - started)
            if 0 <= offset < len(buckets):
                buckets[offset] += 1
    # Fleet breakdown: the same stats per shard label, so one hot or slow
    # shard cannot hide inside the fleet-wide aggregate.
    shard_latency_ms: Dict[str, Dict[str, float]] = {}
    shard_timeseries: Dict[str, List[int]] = {}
    if config.fleet is not None:
        stamps = [stamp for result in results for stamp in result.completions]
        for index in range(len(config.fleet)):
            label = f"shard-{index}"
            shard_lats = [lat for lat, s in zip(latencies, shards) if s == index]
            shard_latency_ms[label] = _latency_stats(shard_lats)
            shard_buckets = [0] * len(buckets)
            for stamp, s in zip(stamps, shards):
                if s != index:
                    continue
                offset = int(stamp - started)
                if 0 <= offset < len(shard_buckets):
                    shard_buckets[offset] += 1
            shard_timeseries[label] = shard_buckets
    report = LoadReport(
        concurrency=config.concurrency,
        elapsed_seconds=elapsed,
        completed=completed,
        errors=sum(result.errors for result in results),
        rate_limited=sum(result.rate_limited for result in results),
        unavailable=sum(result.unavailable for result in results),
        timeouts=sum(result.timeouts for result in results),
        throughput_rps=completed / elapsed if elapsed > 0 else 0.0,
        throughput_timeseries=buckets,
        latency_ms=latency_ms,
        per_label_completed=per_label,
        shard_latency_ms=shard_latency_ms,
        shard_timeseries=shard_timeseries,
        decisions=decisions,
    )
    logger.info("%s", report.summary())
    return report


# ----------------------------------------------------------------------
# Background-job load (POST /v1/jobs/robustness)
# ----------------------------------------------------------------------
@dataclass
class JobLoadConfig:
    """Parameters of one concurrent background-job run.

    ``jobs`` sweeps are submitted at once (each under its own seed, so the
    grids are distinct jobs rather than checkpoint-deduplicated replays of
    one grid) and every event stream is tailed to completion.  Keep ``jobs``
    at or below the server's ``job_max_active`` bound unless 429s are the
    point of the experiment.
    """

    host: str = "127.0.0.1"
    port: int = 8420
    jobs: int = 4
    suspect_id: str = ""
    key_id: Optional[str] = None
    attacks: Optional[List[object]] = None
    seeds: Optional[List[int]] = None
    timeout: float = 300.0

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if not self.suspect_id:
            raise ValueError("suspect_id is required")
        if self.seeds is None:
            self.seeds = list(range(self.jobs))
        if len(self.seeds) != self.jobs:
            raise ValueError(f"need {self.jobs} seeds, got {len(self.seeds)}")


@dataclass
class JobLoadReport:
    """Aggregated outcome of one concurrent-jobs run."""

    jobs: int
    elapsed_seconds: float
    #: Terminal state per job, submission order.
    states: List[str]
    #: Decision digest per job (``None`` unless the job succeeded).
    digests: List[Optional[str]]
    #: Events observed on each job's NDJSON stream (cells + the end record).
    events_streamed: List[int]
    job_ids: List[str]
    #: Submissions rejected by admission (HTTP 429) — not part of ``states``.
    rejected: int = 0
    errors: int = 0

    @property
    def succeeded(self) -> int:
        return sum(1 for state in self.states if state == "succeeded")

    def to_dict(self) -> Dict[str, object]:
        return {
            "jobs": self.jobs,
            "elapsed_seconds": self.elapsed_seconds,
            "states": list(self.states),
            "digests": list(self.digests),
            "events_streamed": list(self.events_streamed),
            "job_ids": list(self.job_ids),
            "rejected": self.rejected,
            "errors": self.errors,
            "succeeded": self.succeeded,
        }


def _job_worker(index: int, config: JobLoadConfig, slots: List[Optional[dict]]) -> None:
    client = VerificationClient(config.host, config.port, timeout=config.timeout)
    try:
        try:
            handle = client.submit_robustness_job(
                config.suspect_id,
                key_id=config.key_id,
                attacks=config.attacks,
                seed=config.seeds[index],
            )
        except RateLimitedError:
            slots[index] = {"rejected": True}
            return
        except (ServiceError, OSError) as exc:
            logger.debug("job %d submission failed: %s", index, exc)
            slots[index] = {"error": True}
            return
        # Tailing the event stream *is* the wait: it closes right after the
        # terminal `end` record, and counting its lines proves per-cell
        # records were readable mid-run.
        events = 0
        for _event in handle.events():
            events += 1
        status = handle.status()
        digest = None
        if status.get("state") == "succeeded":
            digest = handle.report()["report"]["decision_digest"]
        slots[index] = {
            "job_id": handle.job_id,
            "state": str(status.get("state")),
            "events": events,
            "digest": digest,
        }
    except (ServiceError, OSError, TimeoutError) as exc:
        logger.debug("job %d failed: %s", index, exc)
        slots[index] = {"error": True}
    finally:
        client.close()


def run_job_load(config: JobLoadConfig) -> JobLoadReport:
    """Submit ``config.jobs`` concurrent background sweeps, tail them all.

    Every worker thread submits one job, tails its NDJSON event stream to
    the terminal record and fetches the final report.  The per-job decision
    digests let callers assert bit-identity against direct
    :meth:`~repro.robustness.gauntlet.Gauntlet.run` calls — background
    execution, streaming and concurrency must never change a verdict.
    """
    slots: List[Optional[dict]] = [None] * config.jobs
    threads = [
        threading.Thread(
            target=_job_worker,
            args=(i, config, slots),
            name=f"jobload-{i}",
            daemon=True,
        )
        for i in range(config.jobs)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    states, digests, events, job_ids = [], [], [], []
    rejected = errors = 0
    for slot in slots:
        outcome = slot or {"error": True}
        if outcome.get("rejected"):
            rejected += 1
            continue
        if outcome.get("error"):
            errors += 1
            continue
        states.append(outcome["state"])
        digests.append(outcome["digest"])
        events.append(outcome["events"])
        job_ids.append(outcome["job_id"])
    report = JobLoadReport(
        jobs=config.jobs,
        elapsed_seconds=elapsed,
        states=states,
        digests=digests,
        events_streamed=events,
        job_ids=job_ids,
        rejected=rejected,
        errors=errors,
    )
    logger.info(
        "job load: %d submitted, %d succeeded, %d rejected, %d errors in %.2fs",
        config.jobs,
        report.succeeded,
        rejected,
        errors,
        elapsed,
    )
    return report
