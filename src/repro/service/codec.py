"""Wire and on-disk codecs for keys and quantized models.

The verification service speaks JSON, but watermark keys and suspect models
are mostly bulk numeric state.  The codec therefore uses a two-part envelope:

* ``meta`` — plain JSON scalars (config, layer order, grid bits, …),
* ``arrays`` — every NumPy array packed into a single compressed ``.npz``
  archive and transported as base64 text.

The same ``(meta, arrays)`` payload backs the on-disk directory form used by
the ``repro verify`` CLI (``model.json`` + ``model.npz``), mirroring the
layout :meth:`repro.core.keys.WatermarkKey.save` uses for keys.

Nothing here is pickled: NPZ archives are loaded with ``allow_pickle=False``,
so a malicious payload can at worst fail to parse.
"""

from __future__ import annotations

import base64
import io
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Tuple, Union

import numpy as np

from repro.core.keys import WatermarkKey
from repro.models.config import ModelConfig
from repro.quant.base import QuantizationGrid, QuantizedLinear, QuantizedModel
from repro.utils.serialization import load_json, load_npz, save_json, save_npz, to_jsonable

__all__ = [
    "arrays_to_b64",
    "b64_to_arrays",
    "key_to_wire",
    "key_from_wire",
    "model_to_payload",
    "model_from_payload",
    "model_to_wire",
    "model_from_wire",
    "save_model",
    "load_model",
]

PathLike = Union[str, Path]


# ----------------------------------------------------------------------
# Array transport
# ----------------------------------------------------------------------
def arrays_to_b64(arrays: Dict[str, np.ndarray]) -> str:
    """Pack named arrays into one compressed NPZ archive, base64-encoded."""
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **arrays)
    return base64.b64encode(buffer.getvalue()).decode("ascii")


def b64_to_arrays(encoded: str) -> Dict[str, np.ndarray]:
    """Inverse of :func:`arrays_to_b64`.

    Raises :class:`ValueError` on anything that is not a valid base64 NPZ
    archive (truncated upload, wrong encoding, pickled payload).
    """
    if not isinstance(encoded, str):
        raise ValueError(f"array payload must be a base64 string, got {type(encoded).__name__}")
    try:
        raw = base64.b64decode(encoded.encode("ascii"), validate=True)
    except Exception as exc:
        raise ValueError(f"payload is not valid base64: {exc}") from exc
    try:
        with np.load(io.BytesIO(raw), allow_pickle=False) as handle:
            return {name: handle[name] for name in handle.files}
    except Exception as exc:
        raise ValueError(f"payload is not a valid npz archive: {exc}") from exc


# ----------------------------------------------------------------------
# Watermark keys
# ----------------------------------------------------------------------
def key_to_wire(key: WatermarkKey) -> Dict[str, object]:
    """JSON-able wire form of a watermark key."""
    meta, arrays = key.to_payload()
    return {"meta": to_jsonable(meta), "arrays": arrays_to_b64(arrays)}


def key_from_wire(wire: Dict[str, object]) -> WatermarkKey:
    """Rebuild a :class:`WatermarkKey` from :func:`key_to_wire` output."""
    if not isinstance(wire, dict) or "meta" not in wire or "arrays" not in wire:
        raise ValueError("key payload must be an object with 'meta' and 'arrays'")
    return WatermarkKey.from_payload(wire["meta"], b64_to_arrays(wire["arrays"]))


# ----------------------------------------------------------------------
# Quantized models
# ----------------------------------------------------------------------
def model_to_payload(model: QuantizedModel) -> Tuple[Dict[str, object], Dict[str, np.ndarray]]:
    """Split a quantized model into ``(meta, arrays)``.

    The payload round-trips everything verification (and materialization)
    needs: integer weights, scales, grids, smoothing factors, outlier columns
    and the full-precision remainder of the state dict.
    """
    meta: Dict[str, object] = {
        "config": asdict(model.config),
        "method": model.method,
        "bits": model.bits,
        "base_seed": model.base_seed,
        "metadata": model.metadata,
        "layers": {name: {"grid_bits": layer.grid.bits} for name, layer in model.layers.items()},
        "layer_order": model.layer_names(),
    }
    arrays: Dict[str, np.ndarray] = {}
    for name, layer in model.layers.items():
        arrays[f"weight_int/{name}"] = layer.weight_int
        arrays[f"scale/{name}"] = layer.scale
        if layer.bias is not None:
            arrays[f"bias/{name}"] = layer.bias
        if layer.input_smoothing is not None:
            arrays[f"smoothing/{name}"] = layer.input_smoothing
        if layer.outlier_columns is not None:
            arrays[f"outlier_columns/{name}"] = layer.outlier_columns
            arrays[f"outlier_weight/{name}"] = layer.outlier_weight
    for name, value in model.full_precision_state.items():
        arrays[f"state/{name}"] = value
    return meta, arrays


def model_from_payload(
    meta: Dict[str, object], arrays: Dict[str, np.ndarray]
) -> QuantizedModel:
    """Rebuild a :class:`QuantizedModel` from :func:`model_to_payload` output."""
    try:
        config_dict = dict(meta["config"])
        config = ModelConfig(**config_dict)
        grouped: Dict[str, Dict[str, np.ndarray]] = {}
        full_precision_state: Dict[str, np.ndarray] = {}
        for key, value in arrays.items():
            kind, _, name = key.partition("/")
            if kind == "state":
                full_precision_state[name] = value
            else:
                grouped.setdefault(name, {})[kind] = value
        layers: Dict[str, QuantizedLinear] = {}
        for name in meta["layer_order"]:
            parts = grouped[name]
            grid = QuantizationGrid(int(meta["layers"][name]["grid_bits"]))
            layers[name] = QuantizedLinear(
                name=name,
                weight_int=parts["weight_int"].astype(np.int64),
                scale=parts["scale"],
                grid=grid,
                bias=parts.get("bias"),
                input_smoothing=parts.get("smoothing"),
                outlier_columns=parts.get("outlier_columns"),
                outlier_weight=parts.get("outlier_weight"),
            )
        return QuantizedModel(
            config=config,
            layers=layers,
            full_precision_state=full_precision_state,
            method=meta.get("method", ""),
            bits=int(meta.get("bits", 0)),
            base_seed=int(meta.get("base_seed", 0)),
            metadata=dict(meta.get("metadata", {})),
        )
    except (KeyError, TypeError) as exc:
        raise ValueError(f"malformed quantized model payload: {exc}") from exc


def model_to_wire(model: QuantizedModel) -> Dict[str, object]:
    """JSON-able wire form of a quantized model."""
    meta, arrays = model_to_payload(model)
    return {"meta": to_jsonable(meta), "arrays": arrays_to_b64(arrays)}


def model_from_wire(wire: Dict[str, object]) -> QuantizedModel:
    """Rebuild a :class:`QuantizedModel` from :func:`model_to_wire` output."""
    if not isinstance(wire, dict) or "meta" not in wire or "arrays" not in wire:
        raise ValueError("model payload must be an object with 'meta' and 'arrays'")
    return model_from_payload(wire["meta"], b64_to_arrays(wire["arrays"]))


def save_model(model: QuantizedModel, directory: PathLike) -> Path:
    """Persist a quantized model into ``directory`` (``model.json`` + ``model.npz``)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    meta, arrays = model_to_payload(model)
    save_json(directory / "model.json", meta)
    save_npz(directory / "model.npz", arrays)
    return directory


def load_model(directory: PathLike) -> QuantizedModel:
    """Load a model previously written by :func:`save_model`."""
    directory = Path(directory)
    meta = load_json(directory / "model.json")
    arrays = load_npz(directory / "model.npz")
    return model_from_payload(meta, arrays)
