"""Background job manager for long-running robustness sweeps.

A ``/robustness`` request holds its HTTP connection open for the whole
sweep — workable for small grids, hopeless for the paper-scale ones.  The
job API decouples the two: ``POST /v1/jobs/robustness`` answers *202* with
a server-assigned job id immediately, the sweep runs on a bounded worker
pool, and the client polls status, streams per-cell verdicts, or blocks on
the final report at its leisure.

:class:`JobManager` owns the pool and the job table; :class:`Job` is one
sweep's lifecycle:

* a state machine ``pending → running → succeeded | failed | cancelled``
  with monotonic transitions (a terminal state never changes),
* an append-only in-memory event log (one record per completed cell plus a
  terminal record) that the server's chunked NDJSON ``/events`` stream
  tails while the sweep is still running,
* a cooperative cancel flag the gauntlet probes between cells — cancelled
  sweeps keep every finished cell in their on-disk checkpoint, so
  resubmitting the same grid resumes instead of restarting.

Durability lives one layer down, in
:class:`~repro.robustness.checkpoint.CellCheckpoint`: the manager itself is
in-memory (a restarted server starts with an empty job table), but because
the server content-addresses checkpoint files by grid fingerprint,
resubmitting a killed job's request replays its completed cells from disk
and the resumed decision digest is bit-identical to an uninterrupted run.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry, Sample
from repro.utils.logging import get_logger

__all__ = ["Job", "JobLimitError", "JobManager", "JOB_STATES", "TERMINAL_STATES"]

logger = get_logger("service.jobs")

#: Every state a job can be in, in lifecycle order.
JOB_STATES = ("pending", "running", "succeeded", "failed", "cancelled")

#: States a job never leaves.
TERMINAL_STATES = frozenset({"succeeded", "failed", "cancelled"})


class JobLimitError(RuntimeError):
    """The manager's bounded pool cannot accept another job right now."""


class Job:
    """One background sweep: state machine + event log + cancel flag.

    All mutation goes through the manager's runner; readers (status
    handlers, event streams) take consistent snapshots under the job's own
    condition variable.  The event log is append-only, so a streaming
    reader can tail it by index without ever missing or re-reading a
    record.
    """

    def __init__(self, job_id: str, kind: str, total_cells: int, meta: Dict[str, object]) -> None:
        self.job_id = job_id
        self.kind = kind
        self.total_cells = int(total_cells)
        self.meta = dict(meta)
        self.created_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.error: Optional[str] = None
        #: The final result (a RobustnessReport for robustness jobs); set
        #: exactly once, together with the ``succeeded`` transition.
        self.result: Optional[object] = None
        self._state = "pending"
        self._completed_cells = 0
        self._replayed_cells = 0
        self._events: List[Dict[str, object]] = []
        self._cond = threading.Condition(threading.Lock())
        self._cancel = threading.Event()

    # -- state ---------------------------------------------------------
    @property
    def state(self) -> str:
        with self._cond:
            return self._state

    @property
    def is_terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def _transition(self, state: str) -> bool:
        """Move to ``state`` unless already terminal; returns whether moved."""
        with self._cond:
            if self._state in TERMINAL_STATES:
                return False
            self._state = state
            if state == "running":
                self.started_at = time.time()
            if state in TERMINAL_STATES:
                self.finished_at = time.time()
            self._cond.notify_all()
            return True

    # -- cancellation --------------------------------------------------
    def request_cancel(self) -> None:
        """Raise the cooperative cancel flag (the sweep probes it between cells)."""
        self._cancel.set()

    def cancel_requested(self) -> bool:
        """The gauntlet's ``should_stop`` probe."""
        return self._cancel.is_set()

    # -- progress + events ---------------------------------------------
    def record_cell(self, record: Dict[str, object], replayed: bool) -> None:
        """Append one completed cell to the event log (any worker thread)."""
        with self._cond:
            self._completed_cells += 1
            if replayed:
                self._replayed_cells += 1
            event = {"kind": "cell", "seq": len(self._events), "replayed": replayed}
            event.update(record)
            self._events.append(event)
            self._cond.notify_all()

    def _record_end(self) -> None:
        with self._cond:
            self._events.append(
                {
                    "kind": "end",
                    "seq": len(self._events),
                    "job_id": self.job_id,
                    "state": self._state,
                    "completed_cells": self._completed_cells,
                    "total_cells": self.total_cells,
                    "error": self.error,
                }
            )
            self._cond.notify_all()

    def events_since(self, start: int) -> Tuple[List[Dict[str, object]], bool]:
        """Snapshot of events at index >= ``start`` plus a terminal flag.

        The flag reflects the same locked snapshot as the slice, so once it
        is True the slice is guaranteed to already contain the ``end``
        record — a tailing reader that drains and sees True can stop
        without racing the final event.
        """
        with self._cond:
            return list(self._events[start:]), self._state in TERMINAL_STATES

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job reaches a terminal state; True when it did."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while self._state not in TERMINAL_STATES:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._cond.wait(remaining)
            return True

    # -- views ---------------------------------------------------------
    def status(self) -> Dict[str, object]:
        """JSON-able snapshot for ``GET /v1/jobs/{id}``."""
        with self._cond:
            completed = self._completed_cells
            replayed = self._replayed_cells
            state = self._state
            events = len(self._events)
        return {
            "job_id": self.job_id,
            "kind": self.kind,
            "state": state,
            "total_cells": self.total_cells,
            "completed_cells": completed,
            "replayed_cells": replayed,
            "num_events": events,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            **self.meta,
        }


class JobManager:
    """Bounded pool of background jobs plus their (LRU-retained) records.

    ``max_workers`` sweeps run concurrently; at most ``max_active`` jobs may
    be pending-or-running at once (the admission bound — beyond it
    :meth:`submit` raises :class:`JobLimitError`, which the server maps to
    HTTP 429).  Terminal jobs stay queryable until ``max_retained`` newer
    terminal jobs have displaced them.
    """

    def __init__(
        self,
        max_workers: int = 2,
        max_active: int = 8,
        max_retained: int = 64,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if max_active < 1:
            raise ValueError("max_active must be >= 1")
        if max_retained < 1:
            raise ValueError("max_retained must be >= 1")
        self.max_workers = int(max_workers)
        self.max_active = int(max_active)
        self.max_retained = int(max_retained)
        self._executor = ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="wm-job"
        )
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._draining = False
        self._finished: Dict[str, int] = {state: 0 for state in TERMINAL_STATES}
        self._evicted = 0
        if metrics is not None:
            metrics.register_collector(self._collect_samples)

    # -- metrics -------------------------------------------------------
    def _collect_samples(self) -> List[Sample]:
        with self._lock:
            active = sum(
                1 for job in self._jobs.values() if job.state not in TERMINAL_STATES
            )
            running = sum(1 for job in self._jobs.values() if job.state == "running")
            finished = dict(self._finished)
            evicted = self._evicted
        samples = [
            Sample("repro_jobs_active", active, help="jobs pending or running"),
            Sample("repro_jobs_running", running, help="jobs currently executing"),
            Sample(
                "repro_jobs_evicted_total",
                evicted,
                kind="counter",
                help="terminal job records displaced by the retention bound",
            ),
        ]
        for state in sorted(finished):
            samples.append(
                Sample(
                    f"repro_jobs_{state}_total",
                    finished[state],
                    kind="counter",
                    help=f"jobs that finished in state {state}",
                )
            )
        return samples

    # -- lifecycle -----------------------------------------------------
    @property
    def draining(self) -> bool:
        """True once :meth:`drain` was called — no new jobs are admitted."""
        return self._draining

    def drain(self) -> None:
        """Stop admitting, cancel whatever is active (without waiting)."""
        self._draining = True
        with self._lock:
            active = [
                job for job in self._jobs.values() if job.state not in TERMINAL_STATES
            ]
        for job in active:
            job.request_cancel()

    def close(self, wait: bool = True) -> None:
        """Drain and shut the worker pool down (idempotent)."""
        self.drain()
        self._executor.shutdown(wait=wait)

    # -- submission ----------------------------------------------------
    def submit(
        self,
        run_fn: Callable[[Job], object],
        total_cells: int,
        kind: str = "robustness",
        meta: Optional[Dict[str, object]] = None,
    ) -> Job:
        """Admit one job and hand it to the pool.

        ``run_fn(job)`` executes on a worker thread and returns the job's
        result; it is expected to probe ``job.cancel_requested`` and raise
        :class:`~repro.robustness.gauntlet.GauntletCancelled` when asked to
        stop.  Raises :class:`JobLimitError` when the active bound is hit
        or the manager is draining.
        """
        if self._draining:
            raise JobLimitError("job manager is draining, not accepting new jobs")
        with self._lock:
            active = sum(
                1 for job in self._jobs.values() if job.state not in TERMINAL_STATES
            )
            if active >= self.max_active:
                raise JobLimitError(
                    f"{active} jobs already active (bound {self.max_active}), retry later"
                )
            job = Job(f"job-{next(self._ids)}", kind, total_cells, meta or {})
            self._jobs[job.job_id] = job
            self._evict_locked()
        self._executor.submit(self._run, job, run_fn)
        return job

    def _run(self, job: Job, run_fn: Callable[[Job], object]) -> None:
        # Lazy import: keeps manager importable without dragging the full
        # robustness stack in at service-package import time.
        from repro.robustness.gauntlet import GauntletCancelled

        if job.cancel_requested() or not job._transition("running"):
            # Cancelled while still queued: never ran a cell.
            self._finish(job, "cancelled")
            return
        try:
            result = run_fn(job)
        except GauntletCancelled as exc:
            logger.info("job %s cancelled: %s", job.job_id, exc)
            self._finish(job, "cancelled")
        except Exception as exc:  # job bug or bad grid — record, keep serving
            logger.exception("job %s failed", job.job_id)
            job.error = f"{type(exc).__name__}: {exc}"
            self._finish(job, "failed")
        else:
            job.result = result
            self._finish(job, "succeeded")

    def _finish(self, job: Job, state: str) -> None:
        if job._transition(state):
            with self._lock:
                self._finished[state] += 1
        job._record_end()

    def _evict_locked(self) -> None:
        terminal = [
            job_id for job_id, job in self._jobs.items() if job.state in TERMINAL_STATES
        ]
        excess = len(terminal) - self.max_retained
        for job_id in terminal[:excess]:
            del self._jobs[job_id]
            self._evicted += 1

    # -- queries -------------------------------------------------------
    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def cancel(self, job_id: str) -> Optional[Job]:
        """Request cooperative cancellation; returns the job (or None)."""
        job = self.get(job_id)
        if job is not None:
            job.request_cancel()
        return job

    def jobs(self) -> List[Job]:
        with self._lock:
            return list(self._jobs.values())

    def stats(self) -> Dict[str, object]:
        """JSON-able snapshot for ``/stats``."""
        with self._lock:
            states: Dict[str, int] = {state: 0 for state in JOB_STATES}
            for job in self._jobs.values():
                states[job.state] += 1
            return {
                "max_workers": self.max_workers,
                "max_active": self.max_active,
                "draining": self._draining,
                "retained": len(self._jobs),
                "evicted": self._evicted,
                "states": states,
                "finished": dict(self._finished),
            }
