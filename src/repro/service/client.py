"""Synchronous client for the verification service (stdlib ``http.client``).

One :class:`VerificationClient` wraps one keep-alive HTTP connection, so a
closed-loop load-generator worker holds exactly one client and reuses the
socket across its whole request stream.  Instances are **not** thread-safe —
give each thread its own client.
"""

from __future__ import annotations

import http.client
import json
from typing import Dict, List, Optional

from repro.core.keys import WatermarkKey
from repro.quant.base import QuantizedModel
from repro.service.codec import key_to_wire, model_to_wire

__all__ = ["ServiceError", "RateLimitedError", "ServiceUnavailableError", "VerificationClient"]


class ServiceError(RuntimeError):
    """Non-2xx response from the service."""

    def __init__(self, status: int, payload: Dict[str, object]) -> None:
        super().__init__(f"HTTP {status}: {payload.get('error', payload)}")
        self.status = status
        self.payload = payload


class RateLimitedError(ServiceError):
    """HTTP 429 — admission control rejected the request."""


class ServiceUnavailableError(ServiceError):
    """HTTP 503 — the verification queue is full (or the batch timed out)."""


class VerificationClient:
    """Minimal JSON client for :class:`~repro.service.server.VerificationServer`.

    Parameters
    ----------
    host, port:
        Server address.
    timeout:
        Socket timeout per request, in seconds.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8420, timeout: float = 60.0) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        return self._conn

    def _request(
        self, method: str, path: str, body: Optional[Dict[str, object]] = None
    ) -> Dict[str, object]:
        payload = None
        headers = {"Connection": "keep-alive"}
        if body is not None:
            payload = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        conn = self._connection()
        try:
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        except Exception:
            # Connection poisoned (timeout, reset) — drop it so the next call
            # reconnects instead of reading a stale response.
            self.close()
            raise
        try:
            parsed = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            parsed = {"error": raw.decode("utf-8", "replace")}
        if response.status == 429:
            raise RateLimitedError(response.status, parsed)
        if response.status == 503:
            raise ServiceUnavailableError(response.status, parsed)
        if response.status >= 400:
            raise ServiceError(response.status, parsed)
        return parsed

    def _request_text(self, method: str, path: str) -> str:
        """Raw-text request for non-JSON endpoints (``/metrics``)."""
        conn = self._connection()
        try:
            conn.request(method, path, headers={"Connection": "keep-alive"})
            response = conn.getresponse()
            raw = response.read()
        except Exception:
            self.close()
            raise
        text = raw.decode("utf-8", "replace")
        if response.status >= 400:
            raise ServiceError(response.status, {"error": text})
        return text

    def close(self) -> None:
        """Close the underlying connection (a later call reconnects)."""
        if self._conn is not None:
            try:
                self._conn.close()
            finally:
                self._conn = None

    def __enter__(self) -> "VerificationClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def healthz(self) -> Dict[str, object]:
        """Liveness probe."""
        return self._request("GET", "/healthz")

    def stats(self) -> Dict[str, object]:
        """Full server statistics (counters, dispatcher, plan cache, …)."""
        return self._request("GET", "/stats")

    def metrics(self) -> str:
        """Prometheus text exposition from ``GET /metrics`` (not JSON)."""
        return self._request_text("GET", "/metrics")

    def keys(self, model_fingerprint: Optional[str] = None) -> List[Dict[str, object]]:
        """Registered key records, optionally filtered by model fingerprint."""
        path = "/keys"
        if model_fingerprint:
            path += f"?model_fingerprint={model_fingerprint}"
        return self._request("GET", path)["keys"]

    def register_key(
        self,
        key: WatermarkKey,
        owner: str = "",
        metadata: Optional[Dict[str, object]] = None,
    ) -> Dict[str, object]:
        """Register a watermark key; returns its registry record."""
        body = {"owner": owner, "metadata": metadata or {}, "key": key_to_wire(key)}
        return self._request("POST", "/register", body)["registered"]

    def revoke_key(self, key_id: str) -> Dict[str, object]:
        """Revoke a registered key by id."""
        return self._request("POST", "/revoke", {"key_id": key_id})["revoked"]

    def upload_suspect(
        self,
        model: QuantizedModel,
        suspect_id: Optional[str] = None,
        rank: bool = False,
    ) -> Dict[str, object]:
        """Upload a suspect deployment snapshot; returns id + fingerprint.

        With ``rank=True`` the response additionally carries ``ranking`` —
        the suspect verified against every candidate key registered for its
        model family (all co-resident owners), ordered by strength of
        ownership evidence.
        """
        body: Dict[str, object] = {"model": model_to_wire(model)}
        if suspect_id is not None:
            body["suspect_id"] = suspect_id
        if rank:
            body["rank"] = True
        return self._request("POST", "/suspects", body)

    def verify(
        self,
        suspect_id: Optional[str] = None,
        model: Optional[QuantizedModel] = None,
        key_ids: Optional[List[str]] = None,
        wer_threshold: Optional[float] = None,
        max_false_claim_probability: object = "unset",
    ) -> Dict[str, object]:
        """Ownership check of a suspect against selected (or all active) keys.

        Pass either ``suspect_id`` of a previously uploaded snapshot or an
        inline ``model``.  ``max_false_claim_probability=None`` explicitly
        disables the Equation 8 bound; leaving it unset keeps the server
        default.
        """
        body: Dict[str, object] = {}
        if model is not None:
            body["model"] = model_to_wire(model)
            if suspect_id is not None:
                body["suspect_id"] = suspect_id
        elif suspect_id is not None:
            body["suspect_id"] = suspect_id
        else:
            raise ValueError("verify() needs a suspect_id or an inline model")
        if key_ids is not None:
            body["key_ids"] = list(key_ids)
        if wer_threshold is not None:
            body["wer_threshold"] = wer_threshold
        if max_false_claim_probability != "unset":
            body["max_false_claim_probability"] = max_false_claim_probability
        return self._request("POST", "/verify", body)

    def robustness(
        self,
        suspect_id: str,
        key_id: Optional[str] = None,
        attacks: Optional[List[object]] = None,
        seed: int = 0,
        wer_threshold: Optional[float] = None,
        executor: Optional[str] = None,
    ) -> Dict[str, object]:
        """Run the server-side robustness gauntlet on a stored suspect.

        One sweep targets one registered key (``key_id``; may be omitted
        when the registry holds exactly one active key).  ``attacks``
        entries are attack names or ``{"name": ..., "strengths": [...]}``
        objects; omitted, the server sweeps every corpus-free attack at its
        default strengths.  ``executor`` picks the cell executor
        (``"serial"``, ``"thread"``, ``"process"`` or ``"auto"``; omitted,
        the server's streaming default).  Returns the suspect id, the key id
        swept, and the gauntlet report (per-cell ownership evidence, min-WER
        per attack, decision digest).
        """
        body: Dict[str, object] = {"suspect_id": suspect_id, "seed": seed}
        if key_id is not None:
            body["key_id"] = key_id
        if attacks is not None:
            body["attacks"] = list(attacks)
        if wer_threshold is not None:
            body["wer_threshold"] = wer_threshold
        if executor is not None:
            body["executor"] = executor
        return self._request("POST", "/robustness", body)
