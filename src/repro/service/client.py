"""Synchronous client for the verification service (stdlib ``http.client``).

One :class:`VerificationClient` wraps one keep-alive HTTP connection, so a
closed-loop load-generator worker holds exactly one client and reuses the
socket across its whole request stream.  Instances are **not** thread-safe —
give each thread its own client.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Dict, Iterator, List, Optional

from repro.core.keys import WatermarkKey
from repro.quant.base import QuantizedModel
from repro.service.codec import key_to_wire, model_to_wire

__all__ = [
    "ServiceError",
    "RateLimitedError",
    "ServiceUnavailableError",
    "JobHandle",
    "VerificationClient",
]


class ServiceError(RuntimeError):
    """Non-2xx response from the service.

    The server answers every error with the uniform envelope
    ``{"error": {"code", "message", "retry_after"?}}``; ``code`` and
    ``retry_after`` surface here as attributes, and the message is baked
    into ``str(exc)``.  Pre-envelope string bodies are still understood.
    """

    def __init__(self, status: int, payload: Dict[str, object]) -> None:
        error = payload.get("error") if isinstance(payload, dict) else None
        self.code: Optional[str] = None
        self.retry_after: Optional[float] = None
        if isinstance(error, dict):
            message = error.get("message", "")
            code = error.get("code")
            self.code = str(code) if code is not None else None
            retry_after = error.get("retry_after")
            self.retry_after = float(retry_after) if retry_after is not None else None
        elif error is not None:
            message = error
        else:
            message = payload
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload


class RateLimitedError(ServiceError):
    """HTTP 429 — admission control rejected the request."""


class ServiceUnavailableError(ServiceError):
    """HTTP 503 — the verification queue is full (or the batch timed out)."""


class VerificationClient:
    """Minimal JSON client for :class:`~repro.service.server.VerificationServer`.

    Parameters
    ----------
    host, port:
        Server address.
    timeout:
        Socket timeout per request, in seconds.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8420, timeout: float = 60.0) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        return self._conn

    def _request(
        self, method: str, path: str, body: Optional[Dict[str, object]] = None
    ) -> Dict[str, object]:
        payload = None
        headers = {"Connection": "keep-alive"}
        if body is not None:
            payload = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        conn = self._connection()
        try:
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        except Exception:
            # Connection poisoned (timeout, reset) — drop it so the next call
            # reconnects instead of reading a stale response.
            self.close()
            raise
        try:
            parsed = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            parsed = {"error": raw.decode("utf-8", "replace")}
        if response.status == 429:
            raise RateLimitedError(response.status, parsed)
        if response.status == 503:
            raise ServiceUnavailableError(response.status, parsed)
        if response.status >= 400:
            raise ServiceError(response.status, parsed)
        return parsed

    def _request_text(self, method: str, path: str) -> str:
        """Raw-text request for non-JSON endpoints (``/metrics``)."""
        conn = self._connection()
        try:
            conn.request(method, path, headers={"Connection": "keep-alive"})
            response = conn.getresponse()
            raw = response.read()
        except Exception:
            self.close()
            raise
        text = raw.decode("utf-8", "replace")
        if response.status >= 400:
            raise ServiceError(response.status, {"error": text})
        return text

    def close(self) -> None:
        """Close the underlying connection (a later call reconnects)."""
        if self._conn is not None:
            try:
                self._conn.close()
            finally:
                self._conn = None

    def __enter__(self) -> "VerificationClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Endpoints (the client always speaks the versioned /v1 surface)
    # ------------------------------------------------------------------
    def healthz(self, ready: bool = False) -> Dict[str, object]:
        """Liveness probe; ``ready=True`` asks the readiness variant, which
        answers 503 (``ServiceUnavailableError``) while the server drains."""
        return self._request("GET", "/v1/healthz?ready" if ready else "/v1/healthz")

    def stats(self) -> Dict[str, object]:
        """Full server statistics (counters, dispatcher, jobs, plan cache, …)."""
        return self._request("GET", "/v1/stats")

    def metrics(self) -> str:
        """Prometheus text exposition from ``GET /v1/metrics`` (not JSON)."""
        return self._request_text("GET", "/v1/metrics")

    def keys(self, model_fingerprint: Optional[str] = None) -> List[Dict[str, object]]:
        """Registered key records, optionally filtered by model fingerprint."""
        path = "/v1/keys"
        if model_fingerprint:
            path += f"?model_fingerprint={model_fingerprint}"
        return self._request("GET", path)["keys"]

    def register_key(
        self,
        key: WatermarkKey,
        owner: str = "",
        metadata: Optional[Dict[str, object]] = None,
    ) -> Dict[str, object]:
        """Register a watermark key; returns its registry record."""
        body = {"owner": owner, "metadata": metadata or {}, "key": key_to_wire(key)}
        return self._request("POST", "/v1/register", body)["registered"]

    def revoke_key(self, key_id: str) -> Dict[str, object]:
        """Revoke a registered key by id (``DELETE /v1/keys/{key_id}``)."""
        return self._request("DELETE", f"/v1/keys/{key_id}")["revoked"]

    def upload_suspect(
        self,
        model: QuantizedModel,
        suspect_id: Optional[str] = None,
        rank: bool = False,
    ) -> Dict[str, object]:
        """Upload a suspect deployment snapshot; returns id + fingerprint.

        With ``rank=True`` the response additionally carries ``ranking`` —
        the suspect verified against every candidate key registered for its
        model family (all co-resident owners), ordered by strength of
        ownership evidence.
        """
        body: Dict[str, object] = {"model": model_to_wire(model)}
        if suspect_id is not None:
            body["suspect_id"] = suspect_id
        if rank:
            body["rank"] = True
        return self._request("POST", "/v1/suspects", body)

    def verify(
        self,
        suspect_id: Optional[str] = None,
        model: Optional[QuantizedModel] = None,
        key_ids: Optional[List[str]] = None,
        wer_threshold: Optional[float] = None,
        max_false_claim_probability: object = "unset",
    ) -> Dict[str, object]:
        """Ownership check of a suspect against selected (or all active) keys.

        Pass either ``suspect_id`` of a previously uploaded snapshot or an
        inline ``model``.  ``max_false_claim_probability=None`` explicitly
        disables the Equation 8 bound; leaving it unset keeps the server
        default.
        """
        body: Dict[str, object] = {}
        if model is not None:
            body["model"] = model_to_wire(model)
            if suspect_id is not None:
                body["suspect_id"] = suspect_id
        elif suspect_id is not None:
            body["suspect_id"] = suspect_id
        else:
            raise ValueError("verify() needs a suspect_id or an inline model")
        if key_ids is not None:
            body["key_ids"] = list(key_ids)
        if wer_threshold is not None:
            body["wer_threshold"] = wer_threshold
        if max_false_claim_probability != "unset":
            body["max_false_claim_probability"] = max_false_claim_probability
        return self._request("POST", "/v1/verify", body)

    def robustness(
        self,
        suspect_id: str,
        key_id: Optional[str] = None,
        attacks: Optional[List[object]] = None,
        seed: int = 0,
        wer_threshold: Optional[float] = None,
        executor: Optional[str] = None,
    ) -> Dict[str, object]:
        """Run the server-side robustness gauntlet on a stored suspect.

        One sweep targets one registered key (``key_id``; may be omitted
        when the registry holds exactly one active key).  ``attacks``
        entries are attack names or ``{"name": ..., "strengths": [...]}``
        objects; omitted, the server sweeps every corpus-free attack at its
        default strengths.  ``executor`` picks the cell executor
        (``"serial"``, ``"thread"``, ``"process"`` or ``"auto"``; omitted,
        the server's streaming default).  Returns the suspect id, the key id
        swept, and the gauntlet report (per-cell ownership evidence, min-WER
        per attack, decision digest).
        """
        body = self._gauntlet_body(
            suspect_id, key_id, attacks, seed, wer_threshold, executor
        )
        return self._request("POST", "/v1/robustness", body)

    @staticmethod
    def _gauntlet_body(
        suspect_id: str,
        key_id: Optional[str],
        attacks: Optional[List[object]],
        seed: int,
        wer_threshold: Optional[float],
        executor: Optional[str],
    ) -> Dict[str, object]:
        body: Dict[str, object] = {"suspect_id": suspect_id, "seed": seed}
        if key_id is not None:
            body["key_id"] = key_id
        if attacks is not None:
            body["attacks"] = list(attacks)
        if wer_threshold is not None:
            body["wer_threshold"] = wer_threshold
        if executor is not None:
            body["executor"] = executor
        return body

    # ------------------------------------------------------------------
    # Background jobs (/v1/jobs)
    # ------------------------------------------------------------------
    def submit_robustness_job(
        self,
        suspect_id: str,
        key_id: Optional[str] = None,
        attacks: Optional[List[object]] = None,
        seed: int = 0,
        wer_threshold: Optional[float] = None,
        executor: Optional[str] = None,
    ) -> "JobHandle":
        """Submit a background gauntlet sweep; returns immediately.

        Same request shape as :meth:`robustness`, but the server answers
        202 with a job id instead of holding the connection open.  The
        returned :class:`JobHandle` polls status, streams per-cell events,
        blocks on completion and fetches the final report.  When the server
        runs with a checkpoint directory, resubmitting the identical request
        after a cancel/crash/restart resumes from the on-disk checkpoint.
        """
        body = self._gauntlet_body(
            suspect_id, key_id, attacks, seed, wer_threshold, executor
        )
        job = self._request("POST", "/v1/jobs/robustness", body)["job"]
        return JobHandle(self, str(job["job_id"]), job)

    def jobs(self) -> List[Dict[str, object]]:
        """Status snapshots of every retained job."""
        return self._request("GET", "/v1/jobs")["jobs"]

    def job_status(self, job_id: str) -> Dict[str, object]:
        """Status + progress of one job."""
        return self._request("GET", f"/v1/jobs/{job_id}")["job"]

    def job_report(self, job_id: str) -> Dict[str, object]:
        """Final report of a succeeded job.

        Raises :class:`ServiceError` with status 409 (code
        ``job_not_finished`` / ``job_failed`` / ``job_cancelled``) while the
        job is still running or did not succeed.
        """
        return self._request("GET", f"/v1/jobs/{job_id}/report")

    def cancel_job(self, job_id: str) -> Dict[str, object]:
        """Request cooperative cancellation of a running job."""
        return self._request("DELETE", f"/v1/jobs/{job_id}")["job"]

    def job_events(self, job_id: str, since: int = 0) -> Iterator[Dict[str, object]]:
        """Stream the job's NDJSON event log, one record at a time.

        Opens a **dedicated** connection (the stream stays open for the
        job's whole lifetime, which would otherwise head-of-line-block this
        client's keep-alive socket) and yields each event as it arrives —
        per-cell verdicts while the sweep is still running, then the final
        ``end`` record, after which the iterator stops.
        """
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            conn.request("GET", f"/v1/jobs/{job_id}/events?since={int(since)}")
            response = conn.getresponse()
            if response.status >= 400:
                raw = response.read()
                try:
                    parsed = json.loads(raw.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError):
                    parsed = {"error": raw.decode("utf-8", "replace")}
                raise ServiceError(response.status, parsed)
            while True:
                # http.client strips the chunked framing; each line is one
                # complete JSON event (the server emits exactly one line per
                # transfer chunk).
                line = response.readline()
                if not line:
                    return
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))
        finally:
            conn.close()


class JobHandle:
    """Client-side view of one background job.

    Wraps a job id plus the client that created it::

        handle = client.submit_robustness_job("prod-a", attacks=["pruning"])
        for event in handle.events():          # live per-cell verdicts
            print(event)
        handle.wait(timeout=120)
        report = handle.report()["report"]
    """

    def __init__(
        self,
        client: VerificationClient,
        job_id: str,
        status: Optional[Dict[str, object]] = None,
    ) -> None:
        self._client = client
        self.job_id = job_id
        #: The most recent status snapshot (updated by :meth:`status`/:meth:`wait`).
        self.last_status: Dict[str, object] = dict(status or {})

    @property
    def state(self) -> str:
        """Last observed state (call :meth:`status` to refresh)."""
        return str(self.last_status.get("state", "pending"))

    def status(self) -> Dict[str, object]:
        """Fetch and cache the current status snapshot."""
        self.last_status = self._client.job_status(self.job_id)
        return self.last_status

    def events(self, since: int = 0) -> Iterator[Dict[str, object]]:
        """Stream the job's event log (see :meth:`VerificationClient.job_events`)."""
        return self._client.job_events(self.job_id, since=since)

    def wait(self, timeout: float = 300.0, poll_interval: float = 0.1) -> Dict[str, object]:
        """Poll until the job reaches a terminal state; returns the status.

        Raises :class:`TimeoutError` when the deadline passes first — the
        job keeps running server-side (use :meth:`cancel` to stop it).
        """
        deadline = time.monotonic() + timeout
        while True:
            status = self.status()
            if status.get("state") in ("succeeded", "failed", "cancelled"):
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {self.job_id} still {status.get('state')} after {timeout:.0f}s"
                )
            time.sleep(poll_interval)

    def cancel(self) -> Dict[str, object]:
        """Request cooperative cancellation."""
        self.last_status = self._client.cancel_job(self.job_id)
        return self.last_status

    def report(self) -> Dict[str, object]:
        """The final report payload (raises 409 ``ServiceError`` until done)."""
        return self._client.job_report(self.job_id)
