"""Shared asyncio HTTP/1.1 plumbing for the service processes.

Extracted from :mod:`repro.service.server` so the shard router
(:mod:`repro.service.fleet.router`) serves the same wire behaviour — framing
limits, keep-alive handling, the ``{param}`` routing table, the uniform JSON
error envelope, chunked streaming — without duplicating ~400 lines of
connection handling.  :class:`AsyncHttpServer` is the base: subclasses
provide a routing table (:meth:`AsyncHttpServer._build_routes`) and may hook
request counting and latency observation; everything below the routes
(parsing, limits, response writing, lifecycle) is common.

The HTTP layer is deliberately minimal — request line + headers +
``Content-Length`` body, keep-alive connections, no TLS, chunked
transfer-encoding only where a handler returns a :class:`StreamingResponse`
— the stdlib-only constraint rules out real frameworks, and the interesting
engineering lives behind the routes, not in header parsing.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import AsyncIterator, Dict, List, Optional, Sequence, Tuple, Union
from urllib.parse import parse_qs, urlsplit

from repro.utils.logging import get_logger

__all__ = [
    "AsyncHttpServer",
    "HttpError",
    "Route",
    "StreamingResponse",
    "error_envelope",
]

logger = get_logger("service.http")

MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 256 * 1024 * 1024

#: Reason phrases for every status the service can answer with.
REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
}

#: Default machine-readable error codes per status — ``HttpError.code``
#: overrides these when a handler has something more specific to say.
ERROR_CODES = {
    400: "invalid_request",
    404: "not_found",
    405: "method_not_allowed",
    409: "conflict",
    429: "rate_limited",
    500: "internal",
    502: "bad_gateway",
    503: "unavailable",
}


class HttpError(Exception):
    """Internal: converts to the uniform JSON error envelope.

    ``counter`` names the server stat the error should increment; when left
    ``None`` the status code picks the default bucket.  ``code`` overrides
    the status-derived machine-readable code and ``retry_after`` (seconds)
    tells backoff-aware clients when trying again is worthwhile.
    """

    def __init__(
        self,
        status: int,
        message: str,
        counter: Optional[str] = None,
        code: Optional[str] = None,
        retry_after: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.counter = counter
        self.code = code
        self.retry_after = retry_after


def error_envelope(
    status: int,
    message: str,
    code: Optional[str] = None,
    retry_after: Optional[float] = None,
) -> Dict[str, object]:
    """The one error body every endpoint answers with."""
    error: Dict[str, object] = {
        "code": code or ERROR_CODES.get(status, "error"),
        "message": message,
    }
    if retry_after is not None:
        error["retry_after"] = float(retry_after)
    return {"error": error}


class StreamingResponse:
    """A chunked response whose body is an async byte-chunk generator.

    Handlers return one of these instead of ``(status, payload)`` when the
    body must be written incrementally (the job event stream); the
    connection loop switches to ``Transfer-Encoding: chunked`` framing.
    """

    def __init__(
        self,
        status: int,
        body: AsyncIterator[bytes],
        content_type: str = "application/x-ndjson",
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self.status = status
        self.body = body
        self.content_type = content_type
        self.headers = dict(headers or {})


class Route:
    """One (method, path pattern) entry of the routing table.

    Patterns are literal segments with ``{param}`` placeholders
    (``/v1/jobs/{job_id}/events``); matching is segment-exact, captured
    parameters are handed to the handler.  ``legacy`` marks the deprecated
    unversioned aliases — they answer with a ``Deprecation`` header and
    count into ``repro_server_legacy_requests_total``.
    """

    def __init__(self, method: str, pattern: str, handler, legacy: bool = False) -> None:
        self.method = method
        self.pattern = pattern
        self.handler = handler
        self.legacy = legacy
        self._segments = [seg for seg in pattern.split("/") if seg]

    def match(self, segments: Sequence[str]) -> Optional[Dict[str, str]]:
        if len(segments) != len(self._segments):
            return None
        params: Dict[str, str] = {}
        for expected, actual in zip(self._segments, segments):
            if expected.startswith("{") and expected.endswith("}"):
                params[expected[1:-1]] = actual
            elif expected != actual:
                return None
        return params


class AsyncHttpServer:
    """Keep-alive asyncio HTTP server with a declarative routing table.

    Subclasses implement :meth:`_build_routes` and may override the two
    bookkeeping hooks (:meth:`_count`, :meth:`_observe_latency`) to feed
    their own instruments; :meth:`start`/:meth:`stop` are extended (call
    ``super()``) for subsystem lifecycle.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._host = host
        self._requested_port = int(port)
        self._routes = self._build_routes()
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set = set()
        self.port: Optional[int] = None
        self.started_at: Optional[float] = None

    # -- subclass surface ------------------------------------------------
    def _build_routes(self) -> List[Route]:
        raise NotImplementedError

    def _count(self, stat: str) -> None:
        """Increment one request-accounting bucket (default: no bookkeeping)."""

    def _observe_latency(self, seconds: float) -> None:
        """Record one request's routing latency (default: no bookkeeping)."""

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> None:
        """Bind the listening socket."""
        self._server = await asyncio.start_server(
            self._handle_connection, host=self._host, port=self._requested_port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.started_at = time.time()

    async def stop(self) -> None:
        """Stop accepting and close open connections."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Cancel in-flight handlers (idle keep-alive connections would
        # otherwise be destroyed mid-task when the loop shuts down).
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)

    async def serve_forever(self) -> None:
        """Run until cancelled (the CLI entry point)."""
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    # -- connection handling ---------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(asyncio.current_task())
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except HttpError as exc:
                    # Unparseable framing (e.g. a bad Content-Length): answer
                    # once, then drop the connection — the stream position is
                    # no longer trustworthy.
                    self._count("requests_total")
                    self._count("errors")
                    await self._write_response(
                        writer, exc.status, error_envelope(exc.status, str(exc)), False
                    )
                    break
                if request is None:
                    break
                method, path, headers, body = request
                keep_alive = headers.get("connection", "keep-alive").lower() != "close"
                self._count("requests_total")
                started = time.perf_counter()
                response: Union[Tuple[int, object, Dict[str, str]], StreamingResponse]
                try:
                    response = await self._route(method, path, body)
                except HttpError as exc:
                    response = (
                        exc.status,
                        error_envelope(exc.status, str(exc), exc.code, exc.retry_after),
                        {},
                    )
                    if exc.counter is not None:
                        self._count(exc.counter)
                    elif exc.status == 429:
                        self._count("rejected_rate_limit")
                    elif exc.status == 503:
                        self._count("rejected_queue_full")
                    else:
                        self._count("errors")
                except Exception as exc:  # route bug — keep serving
                    logger.exception("unhandled error on %s %s", method, path)
                    response = (
                        500,
                        error_envelope(500, f"{type(exc).__name__}: {exc}"),
                        {},
                    )
                    self._count("errors")
                self._observe_latency(time.perf_counter() - started)
                if isinstance(response, StreamingResponse):
                    await self._write_stream(writer, response, keep_alive)
                else:
                    status, payload, extra_headers = response
                    await self._write_response(
                        writer, status, payload, keep_alive, extra_headers
                    )
                if not keep_alive:
                    break
        except (asyncio.IncompleteReadError, ConnectionError, asyncio.LimitOverrunError):
            pass
        except asyncio.CancelledError:
            pass  # server shutdown
        finally:
            self._connections.discard(asyncio.current_task())
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        try:
            request_line = await reader.readline()
        except ValueError:
            # StreamReader wraps a line longer than its buffer limit into a
            # bare ValueError — answer 400 instead of crashing the task.
            raise HttpError(400, "request line too long") from None
        if not request_line:
            return None
        try:
            method, target, _version = request_line.decode("latin-1").split(None, 2)
        except ValueError:
            raise HttpError(400, "malformed request line") from None
        headers: Dict[str, str] = {}
        header_bytes = 0
        while True:
            try:
                line = await reader.readline()
            except ValueError:
                raise HttpError(400, "header line too long") from None
            header_bytes += len(line)
            if header_bytes > MAX_HEADER_BYTES:
                raise HttpError(400, "header section too large")
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            raise HttpError(400, "invalid Content-Length header") from None
        if length < 0 or length > MAX_BODY_BYTES:
            raise HttpError(400, f"body exceeds the {MAX_BODY_BYTES}-byte limit")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target, headers, body

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Union[Dict[str, object], str],
        keep_alive: bool,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        if isinstance(payload, str):
            # Prometheus text exposition (GET /metrics) — everything else
            # the service speaks is JSON.
            body = payload.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        lines = [
            f"HTTP/1.1 {status} {REASONS.get(status, 'Response')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in (extra_headers or {}).items():
            lines.append(f"{name}: {value}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    async def _write_stream(
        self,
        writer: asyncio.StreamWriter,
        response: StreamingResponse,
        keep_alive: bool,
    ) -> None:
        """Write a chunked response, one transfer-chunk per generator yield.

        Each NDJSON line goes out as its own chunk, so a client tailing the
        job event stream sees cell verdicts as they complete, not when the
        sweep ends.  ``http.client`` (and every real HTTP client) strips the
        chunk framing transparently.
        """
        lines = [
            f"HTTP/1.1 {response.status} {REASONS.get(response.status, 'Response')}",
            f"Content-Type: {response.content_type}",
            "Transfer-Encoding: chunked",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in response.headers.items():
            lines.append(f"{name}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
        await writer.drain()
        body = response.body
        try:
            async for chunk in body:
                if not chunk:
                    continue
                writer.write(f"{len(chunk):X}\r\n".encode("latin-1") + chunk + b"\r\n")
                await writer.drain()
            writer.write(b"0\r\n\r\n")
            await writer.drain()
        finally:
            aclose = getattr(body, "aclose", None)
            if aclose is not None:
                await aclose()

    @staticmethod
    def _json_body(body: bytes) -> Dict[str, object]:
        if not body:
            raise HttpError(400, "request body must be JSON")
        try:
            parsed = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"invalid JSON body: {exc}") from exc
        if not isinstance(parsed, dict):
            raise HttpError(400, "JSON body must be an object")
        return parsed

    # -- routing ----------------------------------------------------------
    async def _route(
        self, method: str, target: str, body: bytes
    ) -> Union[Tuple[int, object, Dict[str, str]], StreamingResponse]:
        parts = urlsplit(target)
        path = parts.path
        # keep_blank_values so the bare `?ready` readiness flag survives.
        query = parse_qs(parts.query, keep_blank_values=True)
        segments = [seg for seg in path.split("/") if seg]
        path_matched = False
        for route in self._routes:
            params = route.match(segments)
            if params is None:
                continue
            path_matched = True
            if route.method != method:
                continue
            if route.legacy:
                self._count("legacy_requests")
            result = route.handler(body, params, query)
            if asyncio.iscoroutine(result):
                result = await result
            if isinstance(result, StreamingResponse):
                if route.legacy:
                    result.headers.setdefault("Deprecation", "true")
                return result
            status, payload = result[0], result[1]
            headers: Dict[str, str] = dict(result[2]) if len(result) > 2 else {}
            if route.legacy:
                headers.setdefault("Deprecation", "true")
            return status, payload, headers
        if path_matched:
            raise HttpError(405, f"method {method} not allowed on {path}")
        raise HttpError(404, f"unknown endpoint {path}")
