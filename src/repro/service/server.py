"""Asyncio verification server (stdlib-only HTTP/1.1 + JSON).

:class:`VerificationServer` is the serving surface of the reproduction: the
owner registers watermark keys, deployments upload suspect snapshots, and
concurrent ``/verify`` requests are coalesced by the
:class:`~repro.service.dispatch.MicroBatchDispatcher` into single
``verify_fleet`` sweeps on the shared engine.

Endpoints (all JSON):

========  =========  ====================================================
method    path       purpose
========  =========  ====================================================
GET       /healthz     liveness probe (uptime, queue depth)
GET       /stats       counters: server, dispatcher, admission, plan cache,
                       registry, audit tail
GET       /metrics     Prometheus text exposition of the same counters plus
                       latency/batch histograms (text/plain, not JSON)
GET       /keys        registered key records (``?model_fingerprint=`` filter)
POST      /register    register a watermark key (owner + wire-encoded key)
POST      /revoke      revoke a key by id
POST      /suspects    upload a suspect model snapshot, returns its id
POST      /verify      ownership check of one suspect against selected keys
POST      /robustness  attack-robustness gauntlet of one stored suspect
                       against one registered key (corpus-free attacks)
========  ===========  ====================================================

The HTTP layer is deliberately minimal — request line + headers +
``Content-Length`` body, keep-alive connections, no TLS, no chunking — the
stdlib-only constraint rules out real frameworks, and the interesting
engineering (admission control, micro-batching, audit) lives behind the
routes, not in header parsing.
"""

from __future__ import annotations

import asyncio
import hashlib
import itertools
import json
import threading
import time
from collections import OrderedDict
from typing import Dict, Optional, Tuple, Union
from urllib.parse import parse_qs, urlsplit

import numpy as np

from repro.core.keys import model_fingerprint
from repro.engine.engine import EngineConfig, WatermarkEngine
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS, MetricsRegistry, Sample
from repro.quant.base import QuantizedModel
from repro.service.audit import AuditLog
from repro.service.codec import key_from_wire, model_from_wire
from repro.service.dispatch import (
    MicroBatchDispatcher,
    OwnerRateLimiter,
    QueueFullError,
    TokenBucket,
    VerifyJob,
)
from repro.service.registry import KeyRegistry, RegistryError
from repro.utils.logging import get_logger

__all__ = ["ServiceConfig", "VerificationServer", "ServerHandle", "run_in_background"]

logger = get_logger("service.server")

_MAX_HEADER_BYTES = 64 * 1024
_MAX_BODY_BYTES = 256 * 1024 * 1024
_VERIFY_TIMEOUT_S = 120.0
_GAUNTLET_TIMEOUT_S = 300.0
#: Report-size sanity ceiling for one /robustness request.  Since sweeps
#: run in constant memory (streaming match-and-release), the real admission
#: bound is the per-request CPU-time budget below, not this number — it
#: only caps the JSON report a single response can grow to.
_MAX_GAUNTLET_CELLS = 4096
#: Until the cost estimator has observed one real sweep, grids are clamped
#: to this (the historical per-request cap): an admission decision based on
#: an unvalidated seed estimate cannot be undone once the sweep is running.
_COLD_START_GAUNTLET_CELLS = 64
#: Concurrent /robustness sweeps; a timed-out sweep cannot be cancelled
#: (it runs CPU-bound on the executor), so admission is bounded instead —
#: abandoned work keeps its slot until it actually finishes.
_MAX_INFLIGHT_GAUNTLETS = 2

#: Server request counters: ``/stats`` key → (metric name, help text).  The
#: backing store is the shared :class:`MetricsRegistry` — ``/stats`` and
#: ``/metrics`` render the same counters, there is no second bookkeeping.
_SERVER_COUNTERS = {
    "requests_total": ("repro_server_requests_total", "HTTP requests received"),
    "verifications": ("repro_server_verifications_total", "completed /verify requests"),
    "decisions_owned": ("repro_server_decisions_owned_total", "ownership verdicts answered 'owned'"),
    "decisions_not_owned": (
        "repro_server_decisions_not_owned_total",
        "ownership verdicts answered 'not owned'",
    ),
    "rejected_rate_limit": (
        "repro_server_rejected_rate_limit_total",
        "requests rejected by the whole-server token bucket",
    ),
    "rejected_owner_rate": (
        "repro_server_rejected_owner_rate_total",
        "requests rejected by per-owner admission",
    ),
    "rejected_cpu_budget": (
        "repro_server_rejected_cpu_budget_total",
        "gauntlet requests rejected by the CPU-time budget",
    ),
    "rejected_queue_full": (
        "repro_server_rejected_queue_full_total",
        "requests rejected on a full dispatch queue",
    ),
    "timeouts": ("repro_server_timeouts_total", "requests that timed out server-side"),
    "errors": ("repro_server_errors_total", "requests answered with an error"),
    "gauntlets": ("repro_server_gauntlets_total", "completed /robustness sweeps"),
}


class _CellCostEstimator:
    """EWMA of the observed per-cell gauntlet CPU cost.

    ``/robustness`` admission is a CPU-time-fairness question, not a
    cell-count one: the streaming pipeline made sweeps constant-memory, so
    the server gates each request on its *projected CPU seconds* instead of
    a fixed cell cap.  The projection is the exponentially weighted mean of
    the per-cell cost actually observed on this server (attack + verify
    seconds summed across workers), seeded with a configurable conservative
    estimate before any sweep has run.
    """

    def __init__(self, initial_cell_seconds: float, smoothing: float = 0.3) -> None:
        if initial_cell_seconds <= 0:
            raise ValueError("initial_cell_seconds must be > 0")
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        self._mean = float(initial_cell_seconds)
        self._smoothing = float(smoothing)
        self._observed_cells = 0
        self._lock = threading.Lock()

    def estimate(self, cells: int) -> float:
        """Projected CPU seconds for a grid of ``cells`` cells."""
        with self._lock:
            return cells * self._mean

    def observe(self, cells: int, cpu_seconds: float) -> None:
        """Fold one finished sweep's measured cost into the mean."""
        if cells <= 0 or cpu_seconds < 0:
            return
        per_cell = cpu_seconds / cells
        with self._lock:
            self._mean = (1.0 - self._smoothing) * self._mean + self._smoothing * per_cell
            self._observed_cells += cells

    @property
    def is_cold(self) -> bool:
        """True until at least one sweep's real cost has been observed."""
        with self._lock:
            return self._observed_cells == 0

    def stats(self) -> Dict[str, object]:
        """JSON-able snapshot for ``/stats``."""
        with self._lock:
            return {
                "mean_cell_seconds": self._mean,
                "observed_cells": self._observed_cells,
            }


def _model_content_id(model: QuantizedModel) -> str:
    """Short digest of a model's *weight values* (not just its shape).

    Used for default suspect ids: the shape-only model fingerprint would
    alias every same-architecture deployment to one id, so an upload of a
    different model could silently replace (or, batched, answer for) another
    suspect.  Hashing the integer weights keeps distinct contents distinct.
    """
    hasher = hashlib.sha256()
    for name in model.layer_names():
        hasher.update(name.encode("utf-8"))
        hasher.update(np.ascontiguousarray(model.get_layer(name).weight_int).tobytes())
    return hasher.hexdigest()[:12]


class _HttpError(Exception):
    """Internal: converts to a JSON error response with the given status.

    ``counter`` names the server stat the error should increment; when left
    ``None`` the status code picks the default bucket.
    """

    def __init__(self, status: int, message: str, counter: Optional[str] = None) -> None:
        super().__init__(message)
        self.status = status
        self.counter = counter


class ServiceConfig:
    """Tuning knobs of a :class:`VerificationServer`.

    ``rate_limit_per_sec`` is the legacy whole-server token bucket;
    ``owner_rate_limit_per_sec`` keys admission by the registry owner the
    request's keys belong to — the multi-tenant replacement, giving each
    owner a private bucket so one aggressive owner cannot starve the rest.
    ``gauntlet_cpu_budget_s`` bounds one ``/robustness`` request by its
    *projected CPU seconds* (observed per-cell cost × cells) instead of the
    old fixed 64-cell cap — sweeps are constant-memory, so CPU-time fairness
    is the real resource; ``None`` disables the budget gate.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        max_batch: int = 32,
        max_wait_ms: float = 2.0,
        max_queue: int = 256,
        rate_limit_per_sec: Optional[float] = None,
        rate_limit_burst: Optional[float] = None,
        owner_rate_limit_per_sec: Optional[float] = None,
        owner_rate_limit_burst: Optional[float] = None,
        max_suspects: int = 1024,
        gauntlet_cpu_budget_s: Optional[float] = 120.0,
        gauntlet_initial_cell_cost_s: float = 0.02,
    ) -> None:
        if rate_limit_burst and not rate_limit_per_sec:
            raise ValueError("rate_limit_burst requires rate_limit_per_sec")
        if owner_rate_limit_burst and not owner_rate_limit_per_sec:
            raise ValueError("owner_rate_limit_burst requires owner_rate_limit_per_sec")
        if max_suspects < 1:
            raise ValueError("max_suspects must be >= 1")
        if gauntlet_cpu_budget_s is not None and gauntlet_cpu_budget_s <= 0:
            raise ValueError("gauntlet_cpu_budget_s must be > 0 (or None to disable)")
        if gauntlet_initial_cell_cost_s <= 0:
            raise ValueError("gauntlet_initial_cell_cost_s must be > 0")
        self.host = host
        self.port = int(port)
        self.max_batch = int(max_batch)
        self.max_wait_ms = float(max_wait_ms)
        self.max_queue = int(max_queue)
        self.rate_limit_per_sec = rate_limit_per_sec
        self.rate_limit_burst = rate_limit_burst
        self.owner_rate_limit_per_sec = owner_rate_limit_per_sec
        self.owner_rate_limit_burst = owner_rate_limit_burst
        self.max_suspects = int(max_suspects)
        self.gauntlet_cpu_budget_s = gauntlet_cpu_budget_s
        self.gauntlet_initial_cell_cost_s = float(gauntlet_initial_cell_cost_s)


class VerificationServer:
    """The ownership-verification service.

    Parameters
    ----------
    engine:
        Shared :class:`WatermarkEngine`; a private one is created when
        omitted (fresh plan cache — a "cold" server).
    registry:
        Key store; an in-memory registry is created when omitted.
    config:
        Network + dispatcher + admission-control settings.
    audit:
        Audit sink; an in-memory-only log is created when omitted.
    """

    def __init__(
        self,
        engine: Optional[WatermarkEngine] = None,
        registry: Optional[KeyRegistry] = None,
        config: Optional[ServiceConfig] = None,
        audit: Optional[AuditLog] = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.engine = engine if engine is not None else WatermarkEngine(EngineConfig())
        self.registry = registry if registry is not None else KeyRegistry()
        self.audit = audit if audit is not None else AuditLog()
        self.bucket = TokenBucket(self.config.rate_limit_per_sec, self.config.rate_limit_burst)
        self.owner_limiter = OwnerRateLimiter(
            self.config.owner_rate_limit_per_sec, self.config.owner_rate_limit_burst
        )
        self._gauntlet_cost = _CellCostEstimator(self.config.gauntlet_initial_cell_cost_s)
        # One registry per server: the dispatcher records into it directly,
        # the admission/audit/cache/registry layers are scraped through pull
        # collectors, and GET /metrics renders the whole thing.
        self.metrics = MetricsRegistry()
        self.dispatcher = MicroBatchDispatcher(
            self.engine,
            max_batch=self.config.max_batch,
            max_wait_ms=self.config.max_wait_ms,
            max_queue=self.config.max_queue,
            metrics=self.metrics,
        )
        # Suspect store: uploaded deployment snapshots, addressed by id.
        # LRU-bounded so a long-running server cannot be grown to OOM by
        # repeated uploads under fresh ids.
        self._suspects: "OrderedDict[str, Tuple[QuantizedModel, str]]" = OrderedDict()
        self._suspects_lock = threading.Lock()
        self._suspect_evictions = 0
        self._request_ids = itertools.count(1)
        self._inline_ids = itertools.count(1)
        # Touched only from the event-loop thread (handler + done callback).
        self._gauntlets_inflight = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set = set()
        self.port: Optional[int] = None
        self.started_at: Optional[float] = None
        # Server counters live on the metrics registry; /stats reads the same
        # instruments /metrics exposes (keyed here by their legacy stat name).
        self._counters = {
            stat: self.metrics.counter(metric, help=help_text)
            for stat, (metric, help_text) in _SERVER_COUNTERS.items()
        }
        self._request_latency = self.metrics.histogram(
            "repro_server_request_seconds",
            help="wall-clock seconds spent routing one HTTP request",
            buckets=DEFAULT_LATENCY_BUCKETS,
        )
        self.metrics.register_collector(self._collect_samples)

    def _collect_samples(self):
        """Pull-based samples scraped at ``/metrics`` render time.

        Subsystems that keep their own counters (admission buckets, audit
        log, plan cache, key registry, suspect store) are *read* here rather
        than migrated onto event-time instruments — their hot paths stay
        untouched and the exposition still covers them.
        """
        cache = self.engine.cache_stats()
        registry = self.registry.stats()
        audit = self.audit.stats()
        with self._suspects_lock:
            num_suspects = len(self._suspects)
            suspect_evictions = self._suspect_evictions
        cost = self._gauntlet_cost.stats()
        return [
            Sample(
                "repro_admission_rejected_total",
                self.bucket.rejected,
                kind="counter",
                help="requests rejected by the whole-server token bucket",
            ),
            Sample(
                "repro_owner_admission_rejected_total",
                self.owner_limiter.rejected,
                kind="counter",
                help="requests rejected by per-owner admission",
            ),
            Sample(
                "repro_audit_entries_total",
                audit["entries"],
                kind="counter",
                help="ownership decisions recorded in the audit log",
            ),
            Sample(
                "repro_audit_dropped_writes_total",
                audit["dropped_writes"],
                kind="counter",
                help="audit entries whose disk copy was dropped",
            ),
            Sample(
                "repro_audit_writer_alive",
                1.0 if audit["writer_alive"] else 0.0,
                help="1 while the audit disk-writer path is healthy",
            ),
            Sample(
                "repro_plan_cache_hits_total",
                cache["hits"],
                kind="counter",
                help="location-plan cache hits",
            ),
            Sample(
                "repro_plan_cache_misses_total",
                cache["misses"],
                kind="counter",
                help="location-plan cache misses",
            ),
            Sample(
                "repro_plan_cache_evictions_total",
                cache["evictions"],
                kind="counter",
                help="location-plan cache evictions",
            ),
            Sample(
                "repro_plan_cache_entries",
                cache["entries"],
                help="location plans currently cached",
            ),
            Sample(
                "repro_registry_keys",
                registry["keys"],
                help="watermark keys ever registered",
            ),
            Sample(
                "repro_registry_active_keys",
                registry["active"],
                help="watermark keys currently active",
            ),
            Sample(
                "repro_suspects_stored",
                num_suspects,
                help="suspect snapshots currently stored",
            ),
            Sample(
                "repro_suspects_evicted_total",
                suspect_evictions,
                kind="counter",
                help="suspect snapshots evicted by the LRU bound",
            ),
            Sample(
                "repro_gauntlets_inflight",
                self._gauntlets_inflight,
                help="/robustness sweeps currently running",
            ),
            Sample(
                "repro_gauntlet_mean_cell_seconds",
                cost["mean_cell_seconds"],
                help="EWMA per-cell CPU cost used for admission",
            ),
        ]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listening socket and start the dispatcher."""
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.config.host, port=self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.started_at = time.time()
        self.dispatcher.start()
        logger.info("verification server listening on %s:%d", self.config.host, self.port)

    async def stop(self) -> None:
        """Stop accepting, close open connections, stop the dispatcher."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Cancel in-flight handlers (idle keep-alive connections would
        # otherwise be destroyed mid-task when the loop shuts down).
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        await self.dispatcher.stop()
        self.audit.close()

    async def serve_forever(self) -> None:
        """Run until cancelled (the CLI entry point)."""
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(asyncio.current_task())
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _HttpError as exc:
                    # Unparseable framing (e.g. a bad Content-Length): answer
                    # once, then drop the connection — the stream position is
                    # no longer trustworthy.
                    self._counters["requests_total"].inc()
                    self._counters["errors"].inc()
                    await self._write_response(writer, exc.status, {"error": str(exc)}, False)
                    break
                if request is None:
                    break
                method, path, headers, body = request
                keep_alive = headers.get("connection", "keep-alive").lower() != "close"
                self._counters["requests_total"].inc()
                started = time.perf_counter()
                try:
                    status, payload = await self._route(method, path, body)
                except _HttpError as exc:
                    status, payload = exc.status, {"error": str(exc)}
                    if exc.counter is not None:
                        self._counters[exc.counter].inc()
                    elif exc.status == 429:
                        self._counters["rejected_rate_limit"].inc()
                    elif exc.status == 503:
                        self._counters["rejected_queue_full"].inc()
                    else:
                        self._counters["errors"].inc()
                except Exception as exc:  # route bug — keep serving
                    logger.exception("unhandled error on %s %s", method, path)
                    status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
                    self._counters["errors"].inc()
                self._request_latency.observe(time.perf_counter() - started)
                await self._write_response(writer, status, payload, keep_alive)
                if not keep_alive:
                    break
        except (asyncio.IncompleteReadError, ConnectionError, asyncio.LimitOverrunError):
            pass
        except asyncio.CancelledError:
            pass  # server shutdown
        finally:
            self._connections.discard(asyncio.current_task())
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        try:
            request_line = await reader.readline()
        except ValueError:
            # StreamReader wraps a line longer than its buffer limit into a
            # bare ValueError — answer 400 instead of crashing the task.
            raise _HttpError(400, "request line too long") from None
        if not request_line:
            return None
        try:
            method, target, _version = request_line.decode("latin-1").split(None, 2)
        except ValueError:
            raise _HttpError(400, "malformed request line") from None
        headers: Dict[str, str] = {}
        header_bytes = 0
        while True:
            try:
                line = await reader.readline()
            except ValueError:
                raise _HttpError(400, "header line too long") from None
            header_bytes += len(line)
            if header_bytes > _MAX_HEADER_BYTES:
                raise _HttpError(400, "header section too large")
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            raise _HttpError(400, "invalid Content-Length header") from None
        if length < 0 or length > _MAX_BODY_BYTES:
            raise _HttpError(400, f"body exceeds the {_MAX_BODY_BYTES}-byte limit")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target, headers, body

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Union[Dict[str, object], str],
        keep_alive: bool,
    ) -> None:
        reasons = {200: "OK", 400: "Bad Request", 404: "Not Found",
                   405: "Method Not Allowed", 429: "Too Many Requests",
                   500: "Internal Server Error", 503: "Service Unavailable"}
        if isinstance(payload, str):
            # Prometheus text exposition (GET /metrics) — everything else
            # the server speaks is JSON.
            body = payload.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        head = (
            f"HTTP/1.1 {status} {reasons.get(status, 'Response')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    @staticmethod
    def _json_body(body: bytes) -> Dict[str, object]:
        if not body:
            raise _HttpError(400, "request body must be JSON")
        try:
            parsed = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HttpError(400, f"invalid JSON body: {exc}") from exc
        if not isinstance(parsed, dict):
            raise _HttpError(400, "JSON body must be an object")
        return parsed

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _route(
        self, method: str, target: str, body: bytes
    ) -> Tuple[int, Dict[str, object]]:
        parts = urlsplit(target)
        path, query = parts.path, parse_qs(parts.query)
        get_routes = {
            "/healthz": self._handle_healthz,
            "/stats": self._handle_stats,
            "/metrics": self._handle_metrics,
            "/keys": lambda _body: self._handle_keys(query),
        }
        post_routes = {
            "/verify": self._handle_verify,
            "/register": self._handle_register,
            "/suspects": self._handle_suspects,
            "/robustness": self._handle_robustness,
        }
        if method == "GET" and path in get_routes:
            return get_routes[path](b"")
        if method == "POST":
            if path in post_routes:
                return await post_routes[path](body)
            if path == "/revoke":
                return self._handle_revoke(body)
        if path in get_routes or path in post_routes or path == "/revoke":
            raise _HttpError(405, f"method {method} not allowed on {path}")
        raise _HttpError(404, f"unknown endpoint {path}")

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def _handle_healthz(self, _body: bytes) -> Tuple[int, Dict[str, object]]:
        return 200, {
            "status": "ok",
            "uptime_seconds": time.time() - (self.started_at or time.time()),
            "queue_depth": self.dispatcher.depth,
        }

    def _handle_metrics(self, _body: bytes) -> Tuple[int, str]:
        """Prometheus text exposition of every registered series."""
        return 200, self.metrics.render()

    def _handle_stats(self, _body: bytes) -> Tuple[int, Dict[str, object]]:
        with self._suspects_lock:
            num_suspects = len(self._suspects)
        return 200, {
            "server": {
                "uptime_seconds": time.time() - (self.started_at or time.time()),
                **{name: int(counter.value) for name, counter in self._counters.items()},
                "request_seconds": self._request_latency.summary(),
            },
            "dispatcher": self.dispatcher.stats(),
            "admission": self.bucket.stats(),
            "owner_admission": self.owner_limiter.stats(),
            "gauntlet": {
                "cpu_budget_s": self.config.gauntlet_cpu_budget_s,
                "max_cells": _MAX_GAUNTLET_CELLS,
                "inflight": self._gauntlets_inflight,
                **self._gauntlet_cost.stats(),
            },
            "plan_cache": self.engine.cache_stats(),
            "registry": self.registry.stats(),
            "suspects": {
                "count": num_suspects,
                "max": self.config.max_suspects,
                "evictions": self._suspect_evictions,
            },
            "audit": self.audit.stats(),
        }

    def _handle_keys(self, query: Dict[str, list]) -> Tuple[int, Dict[str, object]]:
        records = self.registry.records()
        wanted = query.get("model_fingerprint")
        if wanted:
            records = [r for r in records if r.model_fingerprint in wanted]
        return 200, {"keys": [record.to_dict() for record in records]}

    async def _handle_register(self, body: bytes) -> Tuple[int, Dict[str, object]]:
        payload = self._json_body(body)
        if "key" not in payload:
            raise _HttpError(400, "missing 'key' payload")
        loop = asyncio.get_running_loop()
        try:
            # NPZ decode and registry persistence are CPU/disk bound — keep
            # them off the event loop so /healthz and queued /verify responses
            # stay live during large uploads.
            key = await loop.run_in_executor(None, key_from_wire, payload["key"])
        except ValueError as exc:
            raise _HttpError(400, f"invalid key payload: {exc}") from exc
        record = await loop.run_in_executor(
            None,
            lambda: self.registry.register(
                key,
                owner=str(payload.get("owner", "")),
                metadata=payload.get("metadata") or {},
            ),
        )
        return 200, {"registered": record.to_dict()}

    def _handle_revoke(self, body: bytes) -> Tuple[int, Dict[str, object]]:
        payload = self._json_body(body)
        key_id = payload.get("key_id")
        if not key_id:
            raise _HttpError(400, "missing 'key_id'")
        try:
            record = self.registry.revoke(key_id)
        except RegistryError as exc:
            raise _HttpError(404, str(exc)) from exc
        return 200, {"revoked": record.to_dict()}

    async def _handle_suspects(self, body: bytes) -> Tuple[int, Dict[str, object]]:
        payload = self._json_body(body)
        if "model" not in payload:
            raise _HttpError(400, "missing 'model' payload")
        rank = payload.get("rank", False)
        if not isinstance(rank, bool):
            raise _HttpError(400, "'rank' must be a boolean")
        # Ranking is verification work (one fleet sweep against every
        # candidate key), so it pays the same global admission toll as
        # /verify; the per-owner charge happens below, once the candidate
        # keys — and with them the owners — are known.
        if rank and not self.bucket.try_acquire():
            raise _HttpError(429, "rate limit exceeded, retry later")
        loop = asyncio.get_running_loop()
        try:
            model = await loop.run_in_executor(None, model_from_wire, payload["model"])
        except ValueError as exc:
            raise _HttpError(400, f"invalid model payload: {exc}") from exc
        fingerprint = model_fingerprint(model)
        suspect_id = payload.get("suspect_id")
        if suspect_id is not None and not isinstance(suspect_id, str):
            raise _HttpError(400, "'suspect_id' must be a string")
        if not suspect_id:
            # Content-addressed default: same bytes → same id, different
            # model → different id (see _model_content_id).
            suspect_id = "suspect-" + await loop.run_in_executor(
                None, _model_content_id, model
            )
        suspect_id = str(suspect_id)
        with self._suspects_lock:
            if suspect_id in self._suspects:
                self._suspects.move_to_end(suspect_id)
            self._suspects[suspect_id] = (model, fingerprint)
            while len(self._suspects) > self.config.max_suspects:
                self._suspects.popitem(last=False)
                self._suspect_evictions += 1
        candidate_records = self.registry.records_for_model(fingerprint)
        response: Dict[str, object] = {
            "suspect_id": suspect_id,
            "model_fingerprint": fingerprint,
            "num_layers": model.num_quantization_layers,
            "candidate_key_ids": [record.key_id for record in candidate_records],
            # Multi-owner view: every co-resident claimant of the suspect's
            # model family, with owner identity and co-residency up front.
            "candidate_keys": [
                {
                    "key_id": record.key_id,
                    "owner": record.owner,
                    "co_residents": list(record.co_residents),
                }
                for record in candidate_records
            ],
        }
        if rank and candidate_records:
            # Ranked claim shortlist: verify the upload against every
            # co-resident candidate key in one fleet sweep (cached plans
            # amortize across co-residents of the same base) and order by
            # strength of evidence — verdict first, then WER, then the
            # Equation 8 probability.
            self._admit_owners([record.key_id for record in candidate_records])
            keys = self.registry.keys_for_model(fingerprint)
            future = loop.run_in_executor(
                None,
                lambda: self.engine.verify_fleet({suspect_id: model}, keys),
            )
            try:
                report = await asyncio.wait_for(asyncio.shield(future), _VERIFY_TIMEOUT_S)
            except asyncio.TimeoutError:
                raise _HttpError(503, "ranking timed out", counter="timeouts") from None
            owner_of = {record.key_id: record.owner for record in candidate_records}
            ranked = sorted(
                report.pairs,
                key=lambda p: (not p.owned, -p.wer_percent, p.false_claim_probability, p.key_id),
            )
            # Ranking issues real ownership verdicts — they enter the audit
            # log and the decision counters exactly like /verify decisions.
            request_id = f"req-{next(self._request_ids)}"
            for pair in ranked:
                if pair.owned:
                    self._counters["decisions_owned"].inc()
                else:
                    self._counters["decisions_not_owned"].inc()
                self.audit.record(
                    request_id=request_id,
                    kind="ranking",
                    suspect_id=suspect_id,
                    key_id=pair.key_id,
                    owned=pair.owned,
                    wer_percent=pair.wer_percent,
                    matched_bits=pair.matched_bits,
                    total_bits=pair.total_bits,
                    false_claim_probability=pair.false_claim_probability,
                )
            response["request_id"] = request_id
            response["ranking"] = [
                {
                    "key_id": pair.key_id,
                    "owner": owner_of.get(pair.key_id, ""),
                    "owned": pair.owned,
                    "wer_percent": pair.wer_percent,
                    "matched_bits": pair.matched_bits,
                    "total_bits": pair.total_bits,
                    "false_claim_probability": pair.false_claim_probability,
                }
                for pair in ranked
            ]
        elif rank:
            response["ranking"] = []
        return 200, response

    def _admit_owners(self, key_ids) -> None:
        """Per-owner admission: the request is charged to every owner whose
        keys it touches; any owner over their rate rejects the whole request
        (HTTP 429) without burning the other owners' budget."""
        if not self.owner_limiter.enabled:
            return
        owners = []
        for key_id in key_ids:
            try:
                owners.append(self.registry.owner_of(key_id))
            except RegistryError:
                owners.append("")
        if not self.owner_limiter.try_acquire(owners):
            raise _HttpError(
                429, "owner rate limit exceeded, retry later", counter="rejected_owner_rate"
            )

    async def _handle_verify(self, body: bytes) -> Tuple[int, Dict[str, object]]:
        if not self.bucket.try_acquire():
            raise _HttpError(429, "rate limit exceeded, retry later")
        payload = self._json_body(body)
        suspect_id, suspect = await self._resolve_suspect(payload)
        key_ids = payload.get("key_ids")
        if key_ids is not None and (
            not isinstance(key_ids, list) or not all(isinstance(k, str) for k in key_ids)
        ):
            raise _HttpError(400, "'key_ids' must be a list of key id strings")
        try:
            keys = self.registry.active_keys(key_ids)
        except RegistryError as exc:
            raise _HttpError(404, str(exc)) from exc
        if not keys:
            raise _HttpError(400, "no active keys to verify against")
        self._admit_owners(keys)
        job = VerifyJob(
            request_id=f"req-{next(self._request_ids)}",
            suspect_id=suspect_id,
            suspect=suspect,
            keys=keys,
        )
        try:
            if "wer_threshold" in payload:
                job.wer_threshold = float(payload["wer_threshold"])
            if "max_false_claim_probability" in payload:
                raw = payload["max_false_claim_probability"]
                job.max_false_claim_probability = None if raw is None else float(raw)
        except (TypeError, ValueError) as exc:
            raise _HttpError(400, f"invalid threshold value: {exc}") from exc
        try:
            future = self.dispatcher.submit(job)
        except QueueFullError as exc:
            raise _HttpError(503, str(exc)) from exc
        try:
            outcome = await asyncio.wait_for(future, timeout=_VERIFY_TIMEOUT_S)
        except asyncio.TimeoutError:
            raise _HttpError(503, "verification timed out", counter="timeouts") from None
        self._counters["verifications"].inc()
        decisions = []
        for pair in outcome.decisions:
            if pair.owned:
                self._counters["decisions_owned"].inc()
            else:
                self._counters["decisions_not_owned"].inc()
            decisions.append(pair.to_dict())
            # Non-blocking: the ring-buffer append happens here, the disk
            # write + flush on the audit log's own writer thread.
            self.audit.record(
                request_id=outcome.request_id,
                suspect_id=pair.suspect_id,
                key_id=pair.key_id,
                owned=pair.owned,
                wer_percent=pair.wer_percent,
                matched_bits=pair.matched_bits,
                total_bits=pair.total_bits,
                false_claim_probability=pair.false_claim_probability,
                batch_id=outcome.batch_id,
                batch_size=outcome.batch_size,
            )
        return 200, {
            "request_id": outcome.request_id,
            "suspect_id": outcome.suspect_id,
            "decisions": decisions,
            "batch_id": outcome.batch_id,
            "batch_size": outcome.batch_size,
            "queue_ms": outcome.queue_seconds * 1000.0,
            "verify_ms": outcome.verify_seconds * 1000.0,
        }

    async def _handle_robustness(self, body: bytes) -> Tuple[int, Dict[str, object]]:
        """Run the robustness gauntlet on a stored suspect against one key.

        The grid crosses the requested (corpus-free) attacks with their
        strength sweeps — overwriting, pruning, re-quantization and the
        float-domain scenarios (scale tampering, outlier-column rewrites,
        structured head/row pruning); corpus-backed attacks (re-watermarking,
        fine-tuning, GPTQ re-quantization, the adaptive attacker, souping)
        stay client-side.  Quality evaluation is disabled — the server holds
        keys and suspects, not evaluation corpora — so every cell reports
        ownership evidence only.  By default the sweep runs in streaming
        mode on the shared engine (each attacked model is verified and
        released as its worker finishes, so a grid never holds more than the
        worker count in memory), reusing any location plans the verification
        traffic has already cached; an ``executor`` payload key of
        ``"serial"``, ``"thread"``, ``"process"`` or ``"auto"`` selects the
        cell executor explicitly (``"process"`` publishes the suspect into
        shared memory and runs cells in worker processes).  Every cell
        verdict is written to the audit log.
        """
        from repro.robustness import (
            Gauntlet,
            GauntletConfig,
            GauntletSubject,
            build_attack,
            corpus_free_attacks,
        )
        from repro.robustness.attacks import ATTACK_REGISTRY

        if not self.bucket.try_acquire():
            raise _HttpError(429, "rate limit exceeded, retry later")
        payload = self._json_body(body)
        suspect_id, suspect = await self._resolve_suspect(payload)
        # One key per sweep: each (attack, strength) cell attacks the suspect
        # exactly once.  Sweeping K keys in one grid would re-run every attack
        # K times (with K different random draws), burning the cell budget on
        # incomparable rows — clients sweep additional keys with additional
        # requests.
        key_id = payload.get("key_id")
        if key_id is not None and not isinstance(key_id, str):
            raise _HttpError(400, "'key_id' must be a string")
        try:
            keys = self.registry.active_keys([key_id] if key_id else None)
        except RegistryError as exc:
            raise _HttpError(404, str(exc)) from exc
        if not keys:
            raise _HttpError(400, "no active keys to run the gauntlet against")
        if len(keys) > 1:
            raise _HttpError(
                400,
                f"registry holds {len(keys)} active keys; pick one with 'key_id' "
                "(one gauntlet sweep targets one key)",
            )
        key_id, key = next(iter(keys.items()))
        self._admit_owners([key_id])

        raw_attacks = payload.get("attacks")
        if raw_attacks is None:
            raw_attacks = [{"name": name} for name in corpus_free_attacks()]
        if not isinstance(raw_attacks, list) or not raw_attacks:
            raise _HttpError(400, "'attacks' must be a non-empty list")
        attacks = []
        strengths: Dict[str, tuple] = {}
        seen_names = set()
        for entry in raw_attacks:
            if isinstance(entry, str):
                entry = {"name": entry}
            if not isinstance(entry, dict) or "name" not in entry:
                raise _HttpError(400, "each attack must be a name or {'name': ..., 'strengths': [...]}")
            name = str(entry["name"])
            if name in seen_names:
                raise _HttpError(400, f"duplicate attack {name!r} in the grid")
            seen_names.add(name)
            spec_cls = ATTACK_REGISTRY.get(name)
            if spec_cls is None:
                raise _HttpError(400, f"unknown attack {name!r}; available: {corpus_free_attacks()}")
            if spec_cls.requires_corpus:
                raise _HttpError(
                    400,
                    f"attack {name!r} needs an attacker-side corpus and cannot run server-side",
                )
            if "strengths" in entry:
                raw_strengths = entry["strengths"]
                if not isinstance(raw_strengths, list) or not raw_strengths:
                    raise _HttpError(400, f"'strengths' for {name!r} must be a non-empty list")
                try:
                    strengths[name] = tuple(float(v) for v in raw_strengths)
                except (TypeError, ValueError) as exc:
                    raise _HttpError(400, f"non-numeric strength for {name!r}: {exc}") from exc
            attacks.append(build_attack(name))
        num_cells = sum(
            len(strengths.get(spec.name, spec.default_strengths)) for spec in attacks
        )
        if num_cells > _MAX_GAUNTLET_CELLS:
            raise _HttpError(
                400,
                f"grid of {num_cells} cells exceeds the "
                f"{_MAX_GAUNTLET_CELLS}-cell report-size limit",
            )
        # CPU-time fairness gate: streaming sweeps are constant-memory, so
        # admission projects the grid's CPU seconds from the per-cell cost
        # observed on this server and rejects what would hog the executor.
        budget = self.config.gauntlet_cpu_budget_s
        if budget is not None:
            if self._gauntlet_cost.is_cold and num_cells > _COLD_START_GAUNTLET_CELLS:
                # The seed estimate hasn't been validated against a single
                # real sweep yet — a large grid admitted on a wrong guess
                # cannot be cancelled once running, so the first sweeps are
                # clamped to the historical 64-cell bound.
                raise _HttpError(
                    429,
                    f"grid of {num_cells} cells exceeds the "
                    f"{_COLD_START_GAUNTLET_CELLS}-cell cold-start bound "
                    "(no sweep cost observed yet; retry after a smaller sweep)",
                    counter="rejected_cpu_budget",
                )
            projected = self._gauntlet_cost.estimate(num_cells)
            if projected > budget:
                raise _HttpError(
                    429,
                    f"projected CPU cost {projected:.1f}s for {num_cells} cells "
                    f"exceeds the {budget:.0f}s per-request budget",
                    counter="rejected_cpu_budget",
                )
        try:
            seed = int(payload.get("seed", 0))
        except (TypeError, ValueError) as exc:
            raise _HttpError(400, f"invalid seed: {exc}") from exc
        config_kwargs: Dict[str, object] = {"seed": seed, "evaluate_quality": False}
        executor = payload.get("executor")
        if executor is not None:
            if executor not in ("serial", "thread", "process", "auto"):
                raise _HttpError(
                    400,
                    f"unknown executor {executor!r}; "
                    "pick serial, thread, process or auto",
                )
            if executor == "serial":
                config_kwargs["max_workers"] = 1
            elif executor == "process":
                config_kwargs["mode"] = "process"
            elif executor == "auto":
                config_kwargs["mode"] = "auto"
        try:
            if "wer_threshold" in payload:
                config_kwargs["wer_threshold"] = float(payload["wer_threshold"])
            if "max_false_claim_probability" in payload:
                raw = payload["max_false_claim_probability"]
                config_kwargs["max_false_claim_probability"] = (
                    None if raw is None else float(raw)
                )
        except (TypeError, ValueError) as exc:
            raise _HttpError(400, f"invalid threshold value: {exc}") from exc

        subjects = {key_id: GauntletSubject(model=suspect, key=key)}
        gauntlet = Gauntlet(
            engine=self.engine,
            config=GauntletConfig(**config_kwargs),
            metrics=self.metrics,
        )
        loop = asyncio.get_running_loop()
        # Bounded admission: a timed-out sweep keeps burning CPU on the
        # executor until it finishes (threads cannot be cancelled), so its
        # slot is released by the done callback, not by the timeout — retry
        # storms get 503s instead of stacking unbounded sweeps.
        if self._gauntlets_inflight >= _MAX_INFLIGHT_GAUNTLETS:
            raise _HttpError(
                503,
                f"{self._gauntlets_inflight} robustness sweeps already in flight, retry later",
            )
        self._gauntlets_inflight += 1
        future = loop.run_in_executor(None, gauntlet.run, subjects, attacks, strengths)

        def _release(_future) -> None:
            self._gauntlets_inflight -= 1

        future.add_done_callback(_release)
        try:
            report = await asyncio.wait_for(asyncio.shield(future), timeout=_GAUNTLET_TIMEOUT_S)
        except asyncio.TimeoutError:
            raise _HttpError(503, "gauntlet timed out", counter="timeouts") from None
        except ValueError as exc:
            # Grid-level validation the gauntlet performs itself (duplicate
            # strengths, colliding cell ids, …) is still client input.
            raise _HttpError(400, f"invalid gauntlet grid: {exc}") from exc
        self._counters["gauntlets"].inc()
        # Feed the admission estimator with the measured cost: per-cell
        # attack seconds plus the summed verification time (both CPU-bound,
        # summed across workers — the fair-share quantity, not wall clock).
        self._gauntlet_cost.observe(
            report.num_cells,
            sum(cell.attack_seconds for cell in report.cells) + report.verify_seconds,
        )
        # Every cell is an ownership decision against a registered key, so it
        # enters the audit log (and the decision counters) exactly like a
        # /verify verdict — the "every ownership decision is recorded"
        # invariant does not stop at the gauntlet.
        request_id = f"req-{next(self._request_ids)}"
        for cell in report.cells:
            if cell.owned:
                self._counters["decisions_owned"].inc()
            else:
                self._counters["decisions_not_owned"].inc()
            self.audit.record(
                request_id=request_id,
                kind="robustness",
                suspect_id=suspect_id,
                key_id=key_id,
                attack=cell.attack,
                strength=cell.strength,
                owned=cell.owned,
                wer_percent=cell.wer_percent,
                matched_bits=cell.matched_bits,
                total_bits=cell.total_bits,
                false_claim_probability=cell.false_claim_probability,
            )
        return 200, {
            "request_id": request_id,
            "suspect_id": suspect_id,
            "key_id": key_id,
            "report": report.to_dict(),
        }

    async def _resolve_suspect(self, payload: Dict[str, object]) -> Tuple[str, QuantizedModel]:
        """A verify request names a stored suspect or carries one inline."""
        if "model" in payload:
            try:
                model = await asyncio.get_running_loop().run_in_executor(
                    None, model_from_wire, payload["model"]
                )
            except ValueError as exc:
                raise _HttpError(400, f"invalid model payload: {exc}") from exc
            raw_id = payload.get("suspect_id")
            if raw_id is not None and not isinstance(raw_id, str):
                raise _HttpError(400, "'suspect_id' must be a string")
            # Anonymous inline suspects get a unique per-request id: a shared
            # default id would let the batch dispatcher deduplicate two
            # *different* same-architecture models onto one entry and answer
            # one client with the other's verdict.
            suspect_id = raw_id or f"inline-{next(self._inline_ids)}"
            return suspect_id, model
        suspect_id = payload.get("suspect_id")
        if suspect_id is not None and not isinstance(suspect_id, str):
            raise _HttpError(400, "'suspect_id' must be a string")
        if not suspect_id:
            raise _HttpError(400, "provide 'suspect_id' (uploaded) or inline 'model'")
        with self._suspects_lock:
            entry = self._suspects.get(suspect_id)
            if entry is not None:
                self._suspects.move_to_end(suspect_id)
        if entry is None:
            raise _HttpError(404, f"unknown suspect id {suspect_id!r}")
        return suspect_id, entry[0]


# ----------------------------------------------------------------------
# Background runner (tests, examples, load generator)
# ----------------------------------------------------------------------
class ServerHandle:
    """A :class:`VerificationServer` running on a dedicated event-loop thread.

    Created via :func:`run_in_background`; usable as a context manager::

        with run_in_background(server) as handle:
            client = VerificationClient(port=handle.port)
            ...
    """

    def __init__(self, server: VerificationServer) -> None:
        self.server = server
        self._loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self._stop: Optional[asyncio.Future] = None
        self._startup_error: Optional[BaseException] = None
        self._thread = threading.Thread(target=self._run, name="wm-server", daemon=True)

    @property
    def port(self) -> int:
        """The bound port (valid once started)."""
        return self.server.port

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)

        async def main() -> None:
            try:
                await self.server.start()
            except BaseException as exc:
                self._startup_error = exc
                self._ready.set()
                raise
            self._stop = self._loop.create_future()
            self._ready.set()
            try:
                await self._stop
            finally:
                await self.server.stop()

        try:
            self._loop.run_until_complete(main())
        except BaseException:
            if self._startup_error is None:
                logger.exception("server thread crashed")
        finally:
            self._loop.close()

    def start(self) -> "ServerHandle":
        """Start the thread and wait for the socket to be bound."""
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._startup_error is not None:
            raise RuntimeError(f"server failed to start: {self._startup_error}")
        if not self._ready.is_set():
            raise RuntimeError("server did not start within 30s")
        return self

    def close(self) -> None:
        """Stop the server and join the thread (idempotent)."""
        if self._thread.is_alive() and self._stop is not None:
            self._loop.call_soon_threadsafe(
                lambda: self._stop.done() or self._stop.set_result(None)
            )
        self._thread.join(timeout=30.0)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def run_in_background(server: Optional[VerificationServer] = None, **config_kwargs) -> ServerHandle:
    """Start a server on a background thread and return its handle.

    ``config_kwargs`` are forwarded to :class:`ServiceConfig` when no server
    instance is given.
    """
    if server is not None and config_kwargs:
        raise ValueError(
            "pass either a server instance or ServiceConfig kwargs, not both "
            f"(got {sorted(config_kwargs)})"
        )
    if server is None:
        server = VerificationServer(config=ServiceConfig(**config_kwargs))
    return ServerHandle(server).start()
