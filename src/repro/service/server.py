"""Asyncio verification server (stdlib-only HTTP/1.1 + JSON).

:class:`VerificationServer` is the serving surface of the reproduction: the
owner registers watermark keys, deployments upload suspect snapshots, and
concurrent ``/verify`` requests are coalesced by the
:class:`~repro.service.dispatch.MicroBatchDispatcher` into single
``verify_fleet`` sweeps on the shared engine.

The service surface is versioned under ``/v1`` (all JSON unless noted):

======  ==========================  =========================================
method  path                        purpose
======  ==========================  =========================================
GET     /v1/healthz                 liveness probe; ``?ready`` variant answers
                                    503 while the dispatcher or job manager is
                                    draining
GET     /v1/stats                   counters: server, dispatcher, admission,
                                    jobs, plan cache, registry, audit tail
GET     /v1/metrics                 Prometheus text exposition (text/plain)
GET     /v1/keys                    registered key records
                                    (``?model_fingerprint=`` filter)
DELETE  /v1/keys/{key_id}           revoke a key
POST    /v1/register                register a watermark key
POST    /v1/suspects                upload a suspect snapshot, returns its id
POST    /v1/verify                  ownership check of one suspect
POST    /v1/robustness              synchronous robustness gauntlet (small
                                    grids; the connection is held open)
POST    /v1/jobs/robustness         submit a background gauntlet job → 202 +
                                    server-assigned job id
GET     /v1/jobs                    list retained jobs
GET     /v1/jobs/{job_id}           job status + progress
GET     /v1/jobs/{job_id}/events    chunked NDJSON per-cell verdict stream,
                                    readable while the sweep is still running
GET     /v1/jobs/{job_id}/report    final report once the job succeeded
DELETE  /v1/jobs/{job_id}           cooperative cancel
======  ==========================  =========================================

The historical unversioned paths (``/healthz``, ``/stats``, ``/metrics``,
``/keys``, ``/register``, ``/revoke``, ``/suspects``, ``/verify``,
``/robustness``) remain as deprecated aliases: they behave identically,
answer with a ``Deprecation: true`` header, and count into
``repro_server_legacy_requests_total``.

Errors share one envelope across every endpoint::

    {"error": {"code": "rate_limited", "message": "...", "retry_after": 1.0}}

The HTTP layer is deliberately minimal — request line + headers +
``Content-Length`` body, keep-alive connections, no TLS, chunked
transfer-encoding only on the job event stream — the stdlib-only constraint
rules out real frameworks, and the interesting engineering (admission
control, micro-batching, background jobs, audit) lives behind the routes,
not in header parsing.
"""

from __future__ import annotations

import asyncio
import hashlib
import itertools
import json
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import AsyncIterator, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.keys import model_fingerprint
from repro.engine.engine import EngineConfig, WatermarkEngine
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS, MetricsRegistry, Sample
from repro.obs.trace import span
from repro.quant.base import QuantizedModel
from repro.service.audit import AuditLog
from repro.service.codec import key_from_wire, model_from_wire
from repro.service.dispatch import (
    MicroBatchDispatcher,
    OwnerRateLimiter,
    QueueFullError,
    TokenBucket,
    VerifyJob,
)
from repro.service.http import (
    ERROR_CODES as _ERROR_CODES,
    REASONS as _REASONS,
    AsyncHttpServer,
    HttpError as _HttpError,
    Route as _Route,
    StreamingResponse as _StreamingResponse,
    error_envelope as _error_envelope,
)
from repro.service.jobs import Job, JobLimitError, JobManager
from repro.service.registry import KeyRegistry, RegistryError
from repro.utils.logging import get_logger

__all__ = ["ServiceConfig", "VerificationServer", "ServerHandle", "run_in_background"]

logger = get_logger("service.server")

_VERIFY_TIMEOUT_S = 120.0
_GAUNTLET_TIMEOUT_S = 300.0
#: Report-size sanity ceiling for one /robustness request.  Since sweeps
#: run in constant memory (streaming match-and-release), the real admission
#: bound is the per-request CPU-time budget below, not this number — it
#: only caps the JSON report a single response can grow to.
_MAX_GAUNTLET_CELLS = 4096
#: Until the cost estimator has observed one real sweep, grids are clamped
#: to this (the historical per-request cap): an admission decision based on
#: an unvalidated seed estimate cannot be undone once the sweep is running.
_COLD_START_GAUNTLET_CELLS = 64
#: Concurrent /robustness sweeps; a timed-out sweep cannot be cancelled
#: (it runs CPU-bound on the executor), so admission is bounded instead —
#: abandoned work keeps its slot until it actually finishes.
_MAX_INFLIGHT_GAUNTLETS = 2

#: Server request counters: ``/stats`` key → (metric name, help text).  The
#: backing store is the shared :class:`MetricsRegistry` — ``/stats`` and
#: ``/metrics`` render the same counters, there is no second bookkeeping.
_SERVER_COUNTERS = {
    "requests_total": ("repro_server_requests_total", "HTTP requests received"),
    "verifications": ("repro_server_verifications_total", "completed /verify requests"),
    "decisions_owned": ("repro_server_decisions_owned_total", "ownership verdicts answered 'owned'"),
    "decisions_not_owned": (
        "repro_server_decisions_not_owned_total",
        "ownership verdicts answered 'not owned'",
    ),
    "rejected_rate_limit": (
        "repro_server_rejected_rate_limit_total",
        "requests rejected by the whole-server token bucket",
    ),
    "rejected_owner_rate": (
        "repro_server_rejected_owner_rate_total",
        "requests rejected by per-owner admission",
    ),
    "rejected_cpu_budget": (
        "repro_server_rejected_cpu_budget_total",
        "gauntlet requests rejected by the CPU-time budget",
    ),
    "rejected_queue_full": (
        "repro_server_rejected_queue_full_total",
        "requests rejected on a full dispatch queue",
    ),
    "timeouts": ("repro_server_timeouts_total", "requests that timed out server-side"),
    "errors": ("repro_server_errors_total", "requests answered with an error"),
    "gauntlets": ("repro_server_gauntlets_total", "completed /robustness sweeps"),
    "jobs_submitted": (
        "repro_server_jobs_submitted_total",
        "background robustness jobs accepted",
    ),
    "legacy_requests": (
        "repro_server_legacy_requests_total",
        "requests served via deprecated unversioned paths",
    ),
}


class _CellCostEstimator:
    """EWMA of the observed per-cell gauntlet CPU cost.

    ``/robustness`` admission is a CPU-time-fairness question, not a
    cell-count one: the streaming pipeline made sweeps constant-memory, so
    the server gates each request on its *projected CPU seconds* instead of
    a fixed cell cap.  The projection is the exponentially weighted mean of
    the per-cell cost actually observed on this server (attack + verify
    seconds summed across workers), seeded with a configurable conservative
    estimate before any sweep has run.
    """

    def __init__(self, initial_cell_seconds: float, smoothing: float = 0.3) -> None:
        if initial_cell_seconds <= 0:
            raise ValueError("initial_cell_seconds must be > 0")
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        self._mean = float(initial_cell_seconds)
        self._smoothing = float(smoothing)
        self._observed_cells = 0
        self._lock = threading.Lock()

    def estimate(self, cells: int) -> float:
        """Projected CPU seconds for a grid of ``cells`` cells."""
        with self._lock:
            return cells * self._mean

    def observe(self, cells: int, cpu_seconds: float) -> None:
        """Fold one finished sweep's measured cost into the mean."""
        if cells <= 0 or cpu_seconds < 0:
            return
        per_cell = cpu_seconds / cells
        with self._lock:
            self._mean = (1.0 - self._smoothing) * self._mean + self._smoothing * per_cell
            self._observed_cells += cells

    @property
    def is_cold(self) -> bool:
        """True until at least one sweep's real cost has been observed."""
        with self._lock:
            return self._observed_cells == 0

    def stats(self) -> Dict[str, object]:
        """JSON-able snapshot for ``/stats``."""
        with self._lock:
            return {
                "mean_cell_seconds": self._mean,
                "observed_cells": self._observed_cells,
            }


def _model_content_id(model: QuantizedModel) -> str:
    """Short digest of a model's *weight values* (not just its shape).

    Used for default suspect ids: the shape-only model fingerprint would
    alias every same-architecture deployment to one id, so an upload of a
    different model could silently replace (or, batched, answer for) another
    suspect.  Hashing the integer weights keeps distinct contents distinct.
    """
    hasher = hashlib.sha256()
    for name in model.layer_names():
        hasher.update(name.encode("utf-8"))
        hasher.update(np.ascontiguousarray(model.get_layer(name).weight_int).tobytes())
    return hasher.hexdigest()[:12]


class _GauntletRequest:
    """A validated, admitted gauntlet request (shared by the synchronous
    ``/v1/robustness`` handler and the ``/v1/jobs/robustness`` submission —
    both surfaces apply identical validation and CPU-budget admission)."""

    __slots__ = (
        "suspect_id",
        "suspect",
        "key_id",
        "key",
        "attacks",
        "strengths",
        "num_cells",
        "config_kwargs",
    )

    def __init__(
        self,
        suspect_id: str,
        suspect: QuantizedModel,
        key_id: str,
        key,
        attacks,
        strengths: Dict[str, tuple],
        num_cells: int,
        config_kwargs: Dict[str, object],
    ) -> None:
        self.suspect_id = suspect_id
        self.suspect = suspect
        self.key_id = key_id
        self.key = key
        self.attacks = attacks
        self.strengths = strengths
        self.num_cells = num_cells
        self.config_kwargs = config_kwargs


class ServiceConfig:
    """Tuning knobs of a :class:`VerificationServer`.

    ``rate_limit_per_sec`` is the legacy whole-server token bucket;
    ``owner_rate_limit_per_sec`` keys admission by the registry owner the
    request's keys belong to — the multi-tenant replacement, giving each
    owner a private bucket so one aggressive owner cannot starve the rest.
    ``gauntlet_cpu_budget_s`` bounds one ``/robustness`` request — and each
    background job — by its *projected CPU seconds* (observed per-cell cost
    × cells) instead of the old fixed 64-cell cap — sweeps are
    constant-memory, so CPU-time fairness is the real resource; ``None``
    disables the budget gate.  ``checkpoint_dir`` makes background jobs
    durable: each job appends completed cells to a JSONL file
    content-addressed by its grid fingerprint, so resubmitting a killed
    job's request (even after a server restart) replays the finished cells
    and recomputes only the remainder.  ``job_workers`` /``job_max_active``
    size the background job pool.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        max_batch: int = 32,
        max_wait_ms: float = 2.0,
        max_queue: int = 256,
        rate_limit_per_sec: Optional[float] = None,
        rate_limit_burst: Optional[float] = None,
        owner_rate_limit_per_sec: Optional[float] = None,
        owner_rate_limit_burst: Optional[float] = None,
        max_suspects: int = 1024,
        gauntlet_cpu_budget_s: Optional[float] = 120.0,
        gauntlet_initial_cell_cost_s: float = 0.02,
        checkpoint_dir: Optional[Union[str, Path]] = None,
        job_workers: int = 2,
        job_max_active: int = 8,
    ) -> None:
        if rate_limit_burst and not rate_limit_per_sec:
            raise ValueError("rate_limit_burst requires rate_limit_per_sec")
        if owner_rate_limit_burst and not owner_rate_limit_per_sec:
            raise ValueError("owner_rate_limit_burst requires owner_rate_limit_per_sec")
        if max_suspects < 1:
            raise ValueError("max_suspects must be >= 1")
        if gauntlet_cpu_budget_s is not None and gauntlet_cpu_budget_s <= 0:
            raise ValueError("gauntlet_cpu_budget_s must be > 0 (or None to disable)")
        if gauntlet_initial_cell_cost_s <= 0:
            raise ValueError("gauntlet_initial_cell_cost_s must be > 0")
        if job_workers < 1:
            raise ValueError("job_workers must be >= 1")
        if job_max_active < 1:
            raise ValueError("job_max_active must be >= 1")
        self.host = host
        self.port = int(port)
        self.max_batch = int(max_batch)
        self.max_wait_ms = float(max_wait_ms)
        self.max_queue = int(max_queue)
        self.rate_limit_per_sec = rate_limit_per_sec
        self.rate_limit_burst = rate_limit_burst
        self.owner_rate_limit_per_sec = owner_rate_limit_per_sec
        self.owner_rate_limit_burst = owner_rate_limit_burst
        self.max_suspects = int(max_suspects)
        self.gauntlet_cpu_budget_s = gauntlet_cpu_budget_s
        self.gauntlet_initial_cell_cost_s = float(gauntlet_initial_cell_cost_s)
        self.checkpoint_dir = None if checkpoint_dir is None else Path(checkpoint_dir)
        self.job_workers = int(job_workers)
        self.job_max_active = int(job_max_active)


class VerificationServer(AsyncHttpServer):
    """The ownership-verification service.

    Parameters
    ----------
    engine:
        Shared :class:`WatermarkEngine`; a private one is created when
        omitted (fresh plan cache — a "cold" server).
    registry:
        Key store; an in-memory registry is created when omitted.
    config:
        Network + dispatcher + admission-control settings.
    audit:
        Audit sink; an in-memory-only log is created when omitted.
    """

    def __init__(
        self,
        engine: Optional[WatermarkEngine] = None,
        registry: Optional[KeyRegistry] = None,
        config: Optional[ServiceConfig] = None,
        audit: Optional[AuditLog] = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.engine = engine if engine is not None else WatermarkEngine(EngineConfig())
        self.registry = registry if registry is not None else KeyRegistry()
        self.audit = audit if audit is not None else AuditLog()
        self.bucket = TokenBucket(self.config.rate_limit_per_sec, self.config.rate_limit_burst)
        self.owner_limiter = OwnerRateLimiter(
            self.config.owner_rate_limit_per_sec, self.config.owner_rate_limit_burst
        )
        self._gauntlet_cost = _CellCostEstimator(self.config.gauntlet_initial_cell_cost_s)
        # One registry per server: the dispatcher records into it directly,
        # the admission/audit/cache/registry layers are scraped through pull
        # collectors, and GET /metrics renders the whole thing.
        self.metrics = MetricsRegistry()
        self.dispatcher = MicroBatchDispatcher(
            self.engine,
            max_batch=self.config.max_batch,
            max_wait_ms=self.config.max_wait_ms,
            max_queue=self.config.max_queue,
            metrics=self.metrics,
        )
        # Background robustness jobs (POST /v1/jobs/robustness); exposes its
        # gauges through the shared registry.
        self.jobs = JobManager(
            max_workers=self.config.job_workers,
            max_active=self.config.job_max_active,
            metrics=self.metrics,
        )
        # Shared HTTP plumbing (routes, listener, connection handling).
        super().__init__(self.config.host, self.config.port)
        # Suspect store: uploaded deployment snapshots, addressed by id.
        # LRU-bounded so a long-running server cannot be grown to OOM by
        # repeated uploads under fresh ids.
        self._suspects: "OrderedDict[str, Tuple[QuantizedModel, str]]" = OrderedDict()
        self._suspects_lock = threading.Lock()
        self._suspect_evictions = 0
        self._request_ids = itertools.count(1)
        self._inline_ids = itertools.count(1)
        # Touched only from the event-loop thread (handler + done callback).
        self._gauntlets_inflight = 0
        # Server counters live on the metrics registry; /stats reads the same
        # instruments /metrics exposes (keyed here by their legacy stat name).
        self._counters = {
            stat: self.metrics.counter(metric, help=help_text)
            for stat, (metric, help_text) in _SERVER_COUNTERS.items()
        }
        self._request_latency = self.metrics.histogram(
            "repro_server_request_seconds",
            help="wall-clock seconds spent routing one HTTP request",
            buckets=DEFAULT_LATENCY_BUCKETS,
        )
        self.metrics.register_collector(self._collect_samples)

    def _collect_samples(self):
        """Pull-based samples scraped at ``/metrics`` render time.

        Subsystems that keep their own counters (admission buckets, audit
        log, plan cache, key registry, suspect store) are *read* here rather
        than migrated onto event-time instruments — their hot paths stay
        untouched and the exposition still covers them.
        """
        cache = self.engine.cache_stats()
        registry = self.registry.stats()
        audit = self.audit.stats()
        with self._suspects_lock:
            num_suspects = len(self._suspects)
            suspect_evictions = self._suspect_evictions
        cost = self._gauntlet_cost.stats()
        return [
            Sample(
                "repro_admission_rejected_total",
                self.bucket.rejected,
                kind="counter",
                help="requests rejected by the whole-server token bucket",
            ),
            Sample(
                "repro_owner_admission_rejected_total",
                self.owner_limiter.rejected,
                kind="counter",
                help="requests rejected by per-owner admission",
            ),
            Sample(
                "repro_audit_entries_total",
                audit["entries"],
                kind="counter",
                help="ownership decisions recorded in the audit log",
            ),
            Sample(
                "repro_audit_dropped_writes_total",
                audit["dropped_writes"],
                kind="counter",
                help="audit entries whose disk copy was dropped",
            ),
            Sample(
                "repro_audit_writer_alive",
                1.0 if audit["writer_alive"] else 0.0,
                help="1 while the audit disk-writer path is healthy",
            ),
            Sample(
                "repro_plan_cache_hits_total",
                cache["hits"],
                kind="counter",
                help="location-plan cache hits",
            ),
            Sample(
                "repro_plan_cache_misses_total",
                cache["misses"],
                kind="counter",
                help="location-plan cache misses",
            ),
            Sample(
                "repro_plan_cache_evictions_total",
                cache["evictions"],
                kind="counter",
                help="location-plan cache evictions",
            ),
            Sample(
                "repro_plan_cache_entries",
                cache["entries"],
                help="location plans currently cached",
            ),
            Sample(
                "repro_registry_keys",
                registry["keys"],
                help="watermark keys ever registered",
            ),
            Sample(
                "repro_registry_active_keys",
                registry["active"],
                help="watermark keys currently active",
            ),
            Sample(
                "repro_registry_resident_keys",
                registry["resident"],
                help="keys whose bulk material is currently loaded",
            ),
            Sample(
                "repro_registry_key_loads_total",
                registry["key_loads"],
                kind="counter",
                help="lazy key-material loads from disk",
            ),
            Sample(
                "repro_registry_evictions_total",
                registry["evictions"],
                kind="counter",
                help="resident keys evicted by the LRU bound",
            ),
            Sample(
                "repro_registry_quarantined_total",
                registry["quarantined"],
                kind="counter",
                help="corrupt registry entries quarantined",
            ),
            Sample(
                "repro_suspects_stored",
                num_suspects,
                help="suspect snapshots currently stored",
            ),
            Sample(
                "repro_suspects_evicted_total",
                suspect_evictions,
                kind="counter",
                help="suspect snapshots evicted by the LRU bound",
            ),
            Sample(
                "repro_gauntlets_inflight",
                self._gauntlets_inflight,
                help="/robustness sweeps currently running",
            ),
            Sample(
                "repro_gauntlet_mean_cell_seconds",
                cost["mean_cell_seconds"],
                help="EWMA per-cell CPU cost used for admission",
            ),
        ]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listening socket and start the dispatcher."""
        await super().start()
        self.dispatcher.start()
        logger.info("verification server listening on %s:%d", self.config.host, self.port)

    async def stop(self) -> None:
        """Stop accepting, close open connections, stop the dispatcher."""
        await super().stop()
        # Cooperative job shutdown: running sweeps see the cancel flag at
        # their next cell boundary and their checkpoints keep every finished
        # cell — a resubmitted job resumes from disk.  Joining the workers
        # (off the event loop) makes the flush durable before stop() returns,
        # so a successor server sharing the checkpoint directory always sees
        # the completed cells.
        await asyncio.get_running_loop().run_in_executor(
            None, lambda: self.jobs.close(wait=True)
        )
        await self.dispatcher.stop()
        self.audit.close()

    # ------------------------------------------------------------------
    # Request accounting (hooks called by the shared HTTP plumbing)
    # ------------------------------------------------------------------
    def _count(self, stat: str) -> None:
        self._counters[stat].inc()

    def _observe_latency(self, seconds: float) -> None:
        self._request_latency.observe(seconds)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _build_routes(self) -> List[_Route]:
        """The versioned routing table plus its deprecated legacy aliases.

        Registration order is match order, so literal segments
        (``/v1/jobs/robustness``) must precede patterns that would also
        match them (``/v1/jobs/{job_id}``) for the same method.
        """
        v1 = [
            ("GET", "/v1/healthz", self._handle_healthz),
            ("GET", "/v1/stats", self._handle_stats),
            ("GET", "/v1/metrics", self._handle_metrics),
            ("GET", "/v1/keys", self._handle_keys),
            ("GET", "/v1/audit", self._handle_occupancy_audit),
            ("DELETE", "/v1/keys/{key_id}", self._handle_delete_key),
            ("POST", "/v1/register", self._handle_register),
            ("POST", "/v1/suspects", self._handle_suspects),
            ("POST", "/v1/verify", self._handle_verify),
            ("POST", "/v1/robustness", self._handle_robustness),
            ("POST", "/v1/jobs/robustness", self._handle_job_submit),
            ("GET", "/v1/jobs", self._handle_jobs_list),
            ("GET", "/v1/jobs/{job_id}", self._handle_job_status),
            ("GET", "/v1/jobs/{job_id}/events", self._handle_job_events),
            ("GET", "/v1/jobs/{job_id}/report", self._handle_job_report),
            ("DELETE", "/v1/jobs/{job_id}", self._handle_job_cancel),
        ]
        legacy = [
            ("GET", "/healthz", self._handle_healthz),
            ("GET", "/stats", self._handle_stats),
            ("GET", "/metrics", self._handle_metrics),
            ("GET", "/keys", self._handle_keys),
            ("POST", "/register", self._handle_register),
            ("POST", "/revoke", self._handle_revoke),
            ("POST", "/suspects", self._handle_suspects),
            ("POST", "/verify", self._handle_verify),
            ("POST", "/robustness", self._handle_robustness),
        ]
        return [_Route(m, p, h) for m, p, h in v1] + [
            _Route(m, p, h, legacy=True) for m, p, h in legacy
        ]

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def _handle_healthz(self, _body: bytes, _params: Dict[str, str], query) -> Tuple[int, Dict[str, object]]:
        """Liveness — and, with ``?ready``, readiness.

        Liveness answers 200 while the process serves requests at all.
        Readiness additionally demands that neither the dispatcher nor the
        job manager is draining; during shutdown it flips to 503 so a load
        balancer stops sending traffic before the listener disappears.
        """
        payload: Dict[str, object] = {
            "status": "ok",
            "uptime_seconds": time.time() - (self.started_at or time.time()),
            "queue_depth": self.dispatcher.depth,
        }
        if "ready" in query:
            draining = [
                name
                for name, is_draining in (
                    ("dispatcher", self.dispatcher.draining),
                    ("jobs", self.jobs.draining),
                )
                if is_draining
            ]
            if draining:
                body = _error_envelope(
                    503, f"draining: {', '.join(draining)}", code="not_ready"
                )
                body["ready"] = False
                return 503, body
            payload["ready"] = True
        return 200, payload

    def _handle_metrics(self, _body: bytes, _params: Dict[str, str], _query) -> Tuple[int, str]:
        """Prometheus text exposition of every registered series."""
        return 200, self.metrics.render()

    def _handle_stats(self, _body: bytes, _params: Dict[str, str], _query) -> Tuple[int, Dict[str, object]]:
        with self._suspects_lock:
            num_suspects = len(self._suspects)
        return 200, {
            "server": {
                "uptime_seconds": time.time() - (self.started_at or time.time()),
                **{name: int(counter.value) for name, counter in self._counters.items()},
                "request_seconds": self._request_latency.summary(),
            },
            "dispatcher": self.dispatcher.stats(),
            "admission": self.bucket.stats(),
            "owner_admission": self.owner_limiter.stats(),
            "gauntlet": {
                "cpu_budget_s": self.config.gauntlet_cpu_budget_s,
                "max_cells": _MAX_GAUNTLET_CELLS,
                "inflight": self._gauntlets_inflight,
                **self._gauntlet_cost.stats(),
            },
            "jobs": self.jobs.stats(),
            "plan_cache": self.engine.cache_stats(),
            "registry": self.registry.stats(),
            "suspects": {
                "count": num_suspects,
                "max": self.config.max_suspects,
                "evictions": self._suspect_evictions,
            },
            "audit": self.audit.stats(),
        }

    def _handle_keys(self, _body: bytes, _params: Dict[str, str], query) -> Tuple[int, Dict[str, object]]:
        records = self.registry.records()
        wanted = query.get("model_fingerprint")
        if wanted:
            records = [r for r in records if r.model_fingerprint in wanted]
        return 200, {"keys": [record.to_dict() for record in records]}

    async def _handle_occupancy_audit(
        self, _body: bytes, _params: Dict[str, str], _query
    ) -> Tuple[int, Dict[str, object]]:
        """Re-verify slot disjointness of every co-resident key set.

        Reproduces each registered key's locations through the engine (plan
        cache makes repeats cheap) and answers with per-fingerprint verdicts
        plus a shard-count-stable digest; the fleet router merges these per
        shard into ``GET /v1/fleet/audit``.
        """
        from repro.service.fleet.audit import occupancy_audit

        loop = asyncio.get_running_loop()
        report = await loop.run_in_executor(
            None, lambda: occupancy_audit(self.registry, self.engine)
        )
        return 200, {"audit": report.to_dict()}

    async def _handle_register(self, body: bytes, _params: Dict[str, str], _query) -> Tuple[int, Dict[str, object]]:
        payload = self._json_body(body)
        if "key" not in payload:
            raise _HttpError(400, "missing 'key' payload")
        loop = asyncio.get_running_loop()
        try:
            # NPZ decode and registry persistence are CPU/disk bound — keep
            # them off the event loop so /healthz and queued /verify responses
            # stay live during large uploads.
            key = await loop.run_in_executor(None, key_from_wire, payload["key"])
        except ValueError as exc:
            raise _HttpError(400, f"invalid key payload: {exc}") from exc
        record = await loop.run_in_executor(
            None,
            lambda: self.registry.register(
                key,
                owner=str(payload.get("owner", "")),
                metadata=payload.get("metadata") or {},
            ),
        )
        return 200, {"registered": record.to_dict()}

    def _handle_revoke(self, body: bytes, _params: Dict[str, str], _query) -> Tuple[int, Dict[str, object]]:
        """Legacy body-addressed revocation (``POST /revoke``)."""
        payload = self._json_body(body)
        key_id = payload.get("key_id")
        if not key_id:
            raise _HttpError(400, "missing 'key_id'")
        return self._revoke(str(key_id))

    def _handle_delete_key(self, _body: bytes, params: Dict[str, str], _query) -> Tuple[int, Dict[str, object]]:
        """Resource-addressed revocation (``DELETE /v1/keys/{key_id}``)."""
        return self._revoke(params["key_id"])

    def _revoke(self, key_id: str) -> Tuple[int, Dict[str, object]]:
        try:
            record = self.registry.revoke(key_id)
        except RegistryError as exc:
            raise _HttpError(404, str(exc)) from exc
        return 200, {"revoked": record.to_dict()}

    async def _handle_suspects(self, body: bytes, _params: Dict[str, str], _query) -> Tuple[int, Dict[str, object]]:
        payload = self._json_body(body)
        if "model" not in payload:
            raise _HttpError(400, "missing 'model' payload")
        rank = payload.get("rank", False)
        if not isinstance(rank, bool):
            raise _HttpError(400, "'rank' must be a boolean")
        # Ranking is verification work (one fleet sweep against every
        # candidate key), so it pays the same global admission toll as
        # /verify; the per-owner charge happens below, once the candidate
        # keys — and with them the owners — are known.
        if rank and not self.bucket.try_acquire():
            raise _HttpError(429, "rate limit exceeded, retry later", retry_after=1.0)
        loop = asyncio.get_running_loop()
        try:
            model = await loop.run_in_executor(None, model_from_wire, payload["model"])
        except ValueError as exc:
            raise _HttpError(400, f"invalid model payload: {exc}") from exc
        fingerprint = model_fingerprint(model)
        suspect_id = payload.get("suspect_id")
        if suspect_id is not None and not isinstance(suspect_id, str):
            raise _HttpError(400, "'suspect_id' must be a string")
        if not suspect_id:
            # Content-addressed default: same bytes → same id, different
            # model → different id (see _model_content_id).
            suspect_id = "suspect-" + await loop.run_in_executor(
                None, _model_content_id, model
            )
        suspect_id = str(suspect_id)
        with self._suspects_lock:
            if suspect_id in self._suspects:
                self._suspects.move_to_end(suspect_id)
            self._suspects[suspect_id] = (model, fingerprint)
            while len(self._suspects) > self.config.max_suspects:
                self._suspects.popitem(last=False)
                self._suspect_evictions += 1
        candidate_records = self.registry.records_for_model(fingerprint)
        response: Dict[str, object] = {
            "suspect_id": suspect_id,
            "model_fingerprint": fingerprint,
            "num_layers": model.num_quantization_layers,
            "candidate_key_ids": [record.key_id for record in candidate_records],
            # Multi-owner view: every co-resident claimant of the suspect's
            # model family, with owner identity and co-residency up front.
            "candidate_keys": [
                {
                    "key_id": record.key_id,
                    "owner": record.owner,
                    "co_residents": list(record.co_residents),
                }
                for record in candidate_records
            ],
        }
        if rank and candidate_records:
            # Ranked claim shortlist: verify the upload against every
            # co-resident candidate key in one fleet sweep (cached plans
            # amortize across co-residents of the same base) and order by
            # strength of evidence — verdict first, then WER, then the
            # Equation 8 probability.
            self._admit_owners([record.key_id for record in candidate_records])
            keys = self.registry.keys_for_model(fingerprint)
            future = loop.run_in_executor(
                None,
                lambda: self.engine.verify_fleet({suspect_id: model}, keys),
            )
            try:
                report = await asyncio.wait_for(asyncio.shield(future), _VERIFY_TIMEOUT_S)
            except asyncio.TimeoutError:
                raise _HttpError(503, "ranking timed out", counter="timeouts") from None
            owner_of = {record.key_id: record.owner for record in candidate_records}
            ranked = sorted(
                report.pairs,
                key=lambda p: (not p.owned, -p.wer_percent, p.false_claim_probability, p.key_id),
            )
            # Ranking issues real ownership verdicts — they enter the audit
            # log and the decision counters exactly like /verify decisions.
            request_id = f"req-{next(self._request_ids)}"
            for pair in ranked:
                if pair.owned:
                    self._counters["decisions_owned"].inc()
                else:
                    self._counters["decisions_not_owned"].inc()
                self.audit.record(
                    request_id=request_id,
                    kind="ranking",
                    suspect_id=suspect_id,
                    key_id=pair.key_id,
                    owned=pair.owned,
                    wer_percent=pair.wer_percent,
                    matched_bits=pair.matched_bits,
                    total_bits=pair.total_bits,
                    false_claim_probability=pair.false_claim_probability,
                )
            response["request_id"] = request_id
            response["ranking"] = [
                {
                    "key_id": pair.key_id,
                    "owner": owner_of.get(pair.key_id, ""),
                    "owned": pair.owned,
                    "wer_percent": pair.wer_percent,
                    "matched_bits": pair.matched_bits,
                    "total_bits": pair.total_bits,
                    "false_claim_probability": pair.false_claim_probability,
                }
                for pair in ranked
            ]
        elif rank:
            response["ranking"] = []
        return 200, response

    def _admit_owners(self, key_ids) -> None:
        """Per-owner admission: the request is charged to every owner whose
        keys it touches; any owner over their rate rejects the whole request
        (HTTP 429) without burning the other owners' budget."""
        if not self.owner_limiter.enabled:
            return
        owners = []
        for key_id in key_ids:
            try:
                owners.append(self.registry.owner_of(key_id))
            except RegistryError:
                owners.append("")
        if not self.owner_limiter.try_acquire(owners):
            raise _HttpError(
                429,
                "owner rate limit exceeded, retry later",
                counter="rejected_owner_rate",
                retry_after=1.0,
            )

    async def _handle_verify(self, body: bytes, _params: Dict[str, str], _query) -> Tuple[int, Dict[str, object]]:
        if not self.bucket.try_acquire():
            raise _HttpError(429, "rate limit exceeded, retry later", retry_after=1.0)
        payload = self._json_body(body)
        suspect_id, suspect = await self._resolve_suspect(payload)
        key_ids = payload.get("key_ids")
        if key_ids is not None and (
            not isinstance(key_ids, list) or not all(isinstance(k, str) for k in key_ids)
        ):
            raise _HttpError(400, "'key_ids' must be a list of key id strings")
        try:
            keys = self.registry.active_keys(key_ids)
        except RegistryError as exc:
            raise _HttpError(404, str(exc)) from exc
        if not keys:
            raise _HttpError(400, "no active keys to verify against")
        self._admit_owners(keys)
        job = VerifyJob(
            request_id=f"req-{next(self._request_ids)}",
            suspect_id=suspect_id,
            suspect=suspect,
            keys=keys,
        )
        try:
            if "wer_threshold" in payload:
                job.wer_threshold = float(payload["wer_threshold"])
            if "max_false_claim_probability" in payload:
                raw = payload["max_false_claim_probability"]
                job.max_false_claim_probability = None if raw is None else float(raw)
        except (TypeError, ValueError) as exc:
            raise _HttpError(400, f"invalid threshold value: {exc}") from exc
        try:
            future = self.dispatcher.submit(job)
        except QueueFullError as exc:
            raise _HttpError(503, str(exc)) from exc
        try:
            outcome = await asyncio.wait_for(future, timeout=_VERIFY_TIMEOUT_S)
        except asyncio.TimeoutError:
            raise _HttpError(503, "verification timed out", counter="timeouts") from None
        self._counters["verifications"].inc()
        decisions = []
        for pair in outcome.decisions:
            if pair.owned:
                self._counters["decisions_owned"].inc()
            else:
                self._counters["decisions_not_owned"].inc()
            decisions.append(pair.to_dict())
            # Non-blocking: the ring-buffer append happens here, the disk
            # write + flush on the audit log's own writer thread.
            self.audit.record(
                request_id=outcome.request_id,
                suspect_id=pair.suspect_id,
                key_id=pair.key_id,
                owned=pair.owned,
                wer_percent=pair.wer_percent,
                matched_bits=pair.matched_bits,
                total_bits=pair.total_bits,
                false_claim_probability=pair.false_claim_probability,
                batch_id=outcome.batch_id,
                batch_size=outcome.batch_size,
            )
        return 200, {
            "request_id": outcome.request_id,
            "suspect_id": outcome.suspect_id,
            "decisions": decisions,
            "batch_id": outcome.batch_id,
            "batch_size": outcome.batch_size,
            "queue_ms": outcome.queue_seconds * 1000.0,
            "verify_ms": outcome.verify_seconds * 1000.0,
        }

    async def _parse_gauntlet_request(self, body: bytes) -> _GauntletRequest:
        """Validate + admit one gauntlet request (sync route or job submit).

        Performs the whole admission pipeline shared by both surfaces:
        whole-server token bucket, suspect resolution, single-key
        resolution, per-owner charge, attack-grid validation, the cell cap
        and the projected-CPU-seconds budget gate.  Raises
        :class:`_HttpError` on any failure; on success returns the
        validated request, ready to hand to a :class:`Gauntlet`.
        """
        from repro.robustness import build_attack, corpus_free_attacks
        from repro.robustness.attacks import ATTACK_REGISTRY

        if not self.bucket.try_acquire():
            raise _HttpError(429, "rate limit exceeded, retry later", retry_after=1.0)
        payload = self._json_body(body)
        suspect_id, suspect = await self._resolve_suspect(payload)
        # One key per sweep: each (attack, strength) cell attacks the suspect
        # exactly once.  Sweeping K keys in one grid would re-run every attack
        # K times (with K different random draws), burning the cell budget on
        # incomparable rows — clients sweep additional keys with additional
        # requests.
        key_id = payload.get("key_id")
        if key_id is not None and not isinstance(key_id, str):
            raise _HttpError(400, "'key_id' must be a string")
        try:
            keys = self.registry.active_keys([key_id] if key_id else None)
        except RegistryError as exc:
            raise _HttpError(404, str(exc)) from exc
        if not keys:
            raise _HttpError(400, "no active keys to run the gauntlet against")
        if len(keys) > 1:
            raise _HttpError(
                400,
                f"registry holds {len(keys)} active keys; pick one with 'key_id' "
                "(one gauntlet sweep targets one key)",
            )
        key_id, key = next(iter(keys.items()))
        self._admit_owners([key_id])

        raw_attacks = payload.get("attacks")
        if raw_attacks is None:
            raw_attacks = [{"name": name} for name in corpus_free_attacks()]
        if not isinstance(raw_attacks, list) or not raw_attacks:
            raise _HttpError(400, "'attacks' must be a non-empty list")
        attacks = []
        strengths: Dict[str, tuple] = {}
        seen_names = set()
        for entry in raw_attacks:
            if isinstance(entry, str):
                entry = {"name": entry}
            if not isinstance(entry, dict) or "name" not in entry:
                raise _HttpError(400, "each attack must be a name or {'name': ..., 'strengths': [...]}")
            name = str(entry["name"])
            if name in seen_names:
                raise _HttpError(400, f"duplicate attack {name!r} in the grid")
            seen_names.add(name)
            spec_cls = ATTACK_REGISTRY.get(name)
            if spec_cls is None:
                raise _HttpError(400, f"unknown attack {name!r}; available: {corpus_free_attacks()}")
            if spec_cls.requires_corpus:
                raise _HttpError(
                    400,
                    f"attack {name!r} needs an attacker-side corpus and cannot run server-side",
                )
            if "strengths" in entry:
                raw_strengths = entry["strengths"]
                if not isinstance(raw_strengths, list) or not raw_strengths:
                    raise _HttpError(400, f"'strengths' for {name!r} must be a non-empty list")
                try:
                    strengths[name] = tuple(float(v) for v in raw_strengths)
                except (TypeError, ValueError) as exc:
                    raise _HttpError(400, f"non-numeric strength for {name!r}: {exc}") from exc
            attacks.append(build_attack(name))
        num_cells = sum(
            len(strengths.get(spec.name, spec.default_strengths)) for spec in attacks
        )
        if num_cells > _MAX_GAUNTLET_CELLS:
            raise _HttpError(
                400,
                f"grid of {num_cells} cells exceeds the "
                f"{_MAX_GAUNTLET_CELLS}-cell report-size limit",
            )
        # CPU-time fairness gate: streaming sweeps are constant-memory, so
        # admission projects the grid's CPU seconds from the per-cell cost
        # observed on this server and rejects what would hog the executor.
        budget = self.config.gauntlet_cpu_budget_s
        if budget is not None:
            if self._gauntlet_cost.is_cold and num_cells > _COLD_START_GAUNTLET_CELLS:
                # The seed estimate hasn't been validated against a single
                # real sweep yet — a large grid admitted on a wrong guess
                # cannot be cancelled once running, so the first sweeps are
                # clamped to the historical 64-cell bound.
                raise _HttpError(
                    429,
                    f"grid of {num_cells} cells exceeds the "
                    f"{_COLD_START_GAUNTLET_CELLS}-cell cold-start bound "
                    "(no sweep cost observed yet; retry after a smaller sweep)",
                    counter="rejected_cpu_budget",
                )
            projected = self._gauntlet_cost.estimate(num_cells)
            if projected > budget:
                raise _HttpError(
                    429,
                    f"projected CPU cost {projected:.1f}s for {num_cells} cells "
                    f"exceeds the {budget:.0f}s per-request budget",
                    counter="rejected_cpu_budget",
                )
        try:
            seed = int(payload.get("seed", 0))
        except (TypeError, ValueError) as exc:
            raise _HttpError(400, f"invalid seed: {exc}") from exc
        config_kwargs: Dict[str, object] = {"seed": seed, "evaluate_quality": False}
        executor = payload.get("executor")
        if executor is not None:
            if executor not in ("serial", "thread", "process", "auto"):
                raise _HttpError(
                    400,
                    f"unknown executor {executor!r}; "
                    "pick serial, thread, process or auto",
                )
            if executor == "serial":
                config_kwargs["max_workers"] = 1
            elif executor == "process":
                config_kwargs["mode"] = "process"
            elif executor == "auto":
                config_kwargs["mode"] = "auto"
        try:
            if "wer_threshold" in payload:
                config_kwargs["wer_threshold"] = float(payload["wer_threshold"])
            if "max_false_claim_probability" in payload:
                raw = payload["max_false_claim_probability"]
                config_kwargs["max_false_claim_probability"] = (
                    None if raw is None else float(raw)
                )
        except (TypeError, ValueError) as exc:
            raise _HttpError(400, f"invalid threshold value: {exc}") from exc
        return _GauntletRequest(
            suspect_id=suspect_id,
            suspect=suspect,
            key_id=key_id,
            key=key,
            attacks=attacks,
            strengths=strengths,
            num_cells=num_cells,
            config_kwargs=config_kwargs,
        )

    def _build_gauntlet(self, request: _GauntletRequest):
        """The (gauntlet, subjects) pair both gauntlet surfaces run with."""
        from repro.robustness import Gauntlet, GauntletConfig, GauntletSubject

        subjects = {
            request.key_id: GauntletSubject(model=request.suspect, key=request.key)
        }
        gauntlet = Gauntlet(
            engine=self.engine,
            config=GauntletConfig(**request.config_kwargs),
            metrics=self.metrics,
        )
        return gauntlet, subjects

    def _record_cell_decision(
        self, request_id: str, suspect_id: str, key_id: str, cell, kind: str
    ) -> None:
        """Every gauntlet cell is an ownership decision against a registered
        key, so it enters the audit log (and the decision counters) exactly
        like a /verify verdict — the "every ownership decision is recorded"
        invariant does not stop at the gauntlet."""
        if cell.owned:
            self._counters["decisions_owned"].inc()
        else:
            self._counters["decisions_not_owned"].inc()
        self.audit.record(
            request_id=request_id,
            kind=kind,
            suspect_id=suspect_id,
            key_id=key_id,
            attack=cell.attack,
            strength=cell.strength,
            owned=cell.owned,
            wer_percent=cell.wer_percent,
            matched_bits=cell.matched_bits,
            total_bits=cell.total_bits,
            false_claim_probability=cell.false_claim_probability,
        )

    def _observe_gauntlet_cost(self, report) -> None:
        """Feed the admission estimator with the measured cost: per-cell
        attack seconds plus the summed verification time (both CPU-bound,
        summed across workers — the fair-share quantity, not wall clock)."""
        self._gauntlet_cost.observe(
            report.num_cells,
            sum(cell.attack_seconds for cell in report.cells) + report.verify_seconds,
        )

    async def _handle_robustness(self, body: bytes, _params: Dict[str, str], _query) -> Tuple[int, Dict[str, object]]:
        """Run the robustness gauntlet on a stored suspect against one key.

        The grid crosses the requested (corpus-free) attacks with their
        strength sweeps — overwriting, pruning, re-quantization and the
        float-domain scenarios (scale tampering, outlier-column rewrites,
        structured head/row pruning); corpus-backed attacks (re-watermarking,
        fine-tuning, GPTQ re-quantization, the adaptive attacker, souping)
        stay client-side.  Quality evaluation is disabled — the server holds
        keys and suspects, not evaluation corpora — so every cell reports
        ownership evidence only.  By default the sweep runs in streaming
        mode on the shared engine (each attacked model is verified and
        released as its worker finishes, so a grid never holds more than the
        worker count in memory), reusing any location plans the verification
        traffic has already cached; an ``executor`` payload key of
        ``"serial"``, ``"thread"``, ``"process"`` or ``"auto"`` selects the
        cell executor explicitly (``"process"`` publishes the suspect into
        shared memory and runs cells in worker processes).  Every cell
        verdict is written to the audit log.

        The connection is held open for the whole sweep — for long grids
        prefer ``POST /v1/jobs/robustness``, which answers 202 immediately
        and streams per-cell verdicts instead.
        """
        request = await self._parse_gauntlet_request(body)
        gauntlet, subjects = self._build_gauntlet(request)
        loop = asyncio.get_running_loop()
        # Bounded admission: a timed-out sweep keeps burning CPU on the
        # executor until it finishes (threads cannot be cancelled), so its
        # slot is released by the done callback, not by the timeout — retry
        # storms get 503s instead of stacking unbounded sweeps.
        if self._gauntlets_inflight >= _MAX_INFLIGHT_GAUNTLETS:
            raise _HttpError(
                503,
                f"{self._gauntlets_inflight} robustness sweeps already in flight, retry later",
                retry_after=1.0,
            )
        self._gauntlets_inflight += 1
        future = loop.run_in_executor(
            None, gauntlet.run, subjects, request.attacks, request.strengths
        )

        def _release(_future) -> None:
            self._gauntlets_inflight -= 1

        future.add_done_callback(_release)
        try:
            report = await asyncio.wait_for(asyncio.shield(future), timeout=_GAUNTLET_TIMEOUT_S)
        except asyncio.TimeoutError:
            raise _HttpError(503, "gauntlet timed out", counter="timeouts") from None
        except ValueError as exc:
            # Grid-level validation the gauntlet performs itself (duplicate
            # strengths, colliding cell ids, …) is still client input.
            raise _HttpError(400, f"invalid gauntlet grid: {exc}") from exc
        self._counters["gauntlets"].inc()
        self._observe_gauntlet_cost(report)
        request_id = f"req-{next(self._request_ids)}"
        for cell in report.cells:
            self._record_cell_decision(
                request_id, request.suspect_id, request.key_id, cell, kind="robustness"
            )
        return 200, {
            "request_id": request_id,
            "suspect_id": request.suspect_id,
            "key_id": request.key_id,
            "report": report.to_dict(),
        }

    # ------------------------------------------------------------------
    # Background jobs (POST /v1/jobs/robustness and friends)
    # ------------------------------------------------------------------
    async def _handle_job_submit(self, body: bytes, _params: Dict[str, str], _query) -> Tuple[int, Dict[str, object], Dict[str, str]]:
        """Submit a background gauntlet sweep; answers 202 + job id.

        The request passes the same validation and CPU-budget admission as
        the synchronous route, then runs on the job manager's worker pool.
        With a configured ``checkpoint_dir`` every completed cell is
        appended to a JSONL file content-addressed by the grid fingerprint
        (grid + seed + thresholds + the suspect's *content* digest), so
        resubmitting the identical request — after a cancel, a crash or a
        full server restart — replays the finished cells from disk and the
        resumed report's decision digest is bit-identical to an
        uninterrupted run.
        """
        from repro.robustness.checkpoint import CellCheckpoint

        request = await self._parse_gauntlet_request(body)
        gauntlet, subjects = self._build_gauntlet(request)
        checkpoint_dir = self.config.checkpoint_dir
        meta: Dict[str, object] = {
            "suspect_id": request.suspect_id,
            "key_id": request.key_id,
        }
        fingerprint: Optional[str] = None
        ckpt_path: Optional[Path] = None
        if checkpoint_dir is not None:
            # Content-addressed checkpoint: the fingerprint folds in the
            # suspect's weight digest, so the same grid over a *different*
            # upload can never resume a stale file.  Computed here (hashing
            # happens off the event loop) so the 202 status already names
            # the checkpoint, before the worker has picked the job up.
            loop = asyncio.get_running_loop()
            fingerprint = await loop.run_in_executor(
                None,
                lambda: gauntlet.grid_fingerprint_for(
                    subjects,
                    request.attacks,
                    request.strengths or None,
                    extra={"suspect_content": _model_content_id(request.suspect)},
                ),
            )
            ckpt_path = checkpoint_dir / f"{fingerprint[:16]}.jsonl"
            meta["checkpoint"] = str(ckpt_path)

        def run_sweep(job: Job):
            ckpt = None
            if ckpt_path is not None:
                ckpt = CellCheckpoint(ckpt_path, fingerprint=fingerprint)

            def on_cell(cell, replayed: bool) -> None:
                self._record_cell_decision(
                    job.job_id, request.suspect_id, request.key_id, cell,
                    kind="robustness-job",
                )
                job.record_cell(
                    {"cell_id": cell.cell_id, "cell": cell.to_dict()}, replayed
                )

            with span(
                "job.run",
                job_id=job.job_id,
                suspect_id=request.suspect_id,
                key_id=request.key_id,
                cells=request.num_cells,
            ):
                report = gauntlet.run(
                    subjects,
                    request.attacks,
                    request.strengths or None,
                    checkpoint=ckpt,
                    on_cell=on_cell,
                    should_stop=job.cancel_requested,
                )
            self._counters["gauntlets"].inc()
            self._observe_gauntlet_cost(report)
            return report

        try:
            job = self.jobs.submit(run_sweep, total_cells=request.num_cells, meta=meta)
        except JobLimitError as exc:
            raise _HttpError(
                429, str(exc), code="job_limit", retry_after=1.0
            ) from exc
        self._counters["jobs_submitted"].inc()
        return 202, {"job": job.status()}, {"Location": f"/v1/jobs/{job.job_id}"}

    def _job_or_404(self, job_id: str) -> Job:
        job = self.jobs.get(job_id)
        if job is None:
            raise _HttpError(404, f"unknown job id {job_id!r}")
        return job

    def _handle_jobs_list(self, _body: bytes, _params: Dict[str, str], _query) -> Tuple[int, Dict[str, object]]:
        return 200, {"jobs": [job.status() for job in self.jobs.jobs()]}

    def _handle_job_status(self, _body: bytes, params: Dict[str, str], _query) -> Tuple[int, Dict[str, object]]:
        return 200, {"job": self._job_or_404(params["job_id"]).status()}

    def _handle_job_events(self, _body: bytes, params: Dict[str, str], query) -> _StreamingResponse:
        """Chunked NDJSON stream of the job's event log.

        One JSON object per line: a ``cell`` record per completed cell
        (replayed checkpoint cells first, then fresh ones as they finish)
        and a final ``end`` record carrying the terminal state.  The stream
        is tail-follow: it stays open while the sweep runs and closes after
        the ``end`` record.  ``?since=N`` skips the first N events for
        reconnecting consumers.
        """
        job = self._job_or_404(params["job_id"])
        raw_since = query.get("since", ["0"])[0] or "0"
        try:
            since = int(raw_since)
        except ValueError:
            raise _HttpError(400, f"'since' must be an integer, got {raw_since!r}") from None
        if since < 0:
            raise _HttpError(400, "'since' must be >= 0")
        return _StreamingResponse(200, self._job_event_stream(job, since))

    async def _job_event_stream(self, job: Job, since: int) -> AsyncIterator[bytes]:
        index = since
        while True:
            events, terminal = job.events_since(index)
            for event in events:
                yield (json.dumps(event) + "\n").encode("utf-8")
            index += len(events)
            if terminal:
                # The snapshot above is taken under the job's lock, so when
                # `terminal` is True the `end` record was already in it.
                return
            await asyncio.sleep(0.05)

    def _handle_job_report(self, _body: bytes, params: Dict[str, str], _query) -> Tuple[int, Dict[str, object]]:
        job = self._job_or_404(params["job_id"])
        state = job.state
        if state not in ("succeeded", "failed", "cancelled"):
            raise _HttpError(
                409,
                f"job {job.job_id} is {state}; report not ready",
                code="job_not_finished",
                retry_after=0.5,
            )
        if state != "succeeded":
            detail = f": {job.error}" if job.error else ""
            raise _HttpError(
                409, f"job {job.job_id} {state}{detail}", code=f"job_{state}"
            )
        report = job.result
        return 200, {
            "job_id": job.job_id,
            "suspect_id": job.meta.get("suspect_id"),
            "key_id": job.meta.get("key_id"),
            "report": report.to_dict(),
        }

    def _handle_job_cancel(self, _body: bytes, params: Dict[str, str], _query) -> Tuple[int, Dict[str, object]]:
        """Cooperative cancel — the sweep stops at its next cell boundary.

        Cancelling an already-finished job is a 409: the verdict (and any
        checkpoint) already exists, there is nothing left to stop.
        """
        job = self._job_or_404(params["job_id"])
        if job.is_terminal:
            raise _HttpError(
                409, f"job {job.job_id} already {job.state}", code="job_finished"
            )
        self.jobs.cancel(job.job_id)
        return 202, {"job": job.status()}

    async def _resolve_suspect(self, payload: Dict[str, object]) -> Tuple[str, QuantizedModel]:
        """A verify request names a stored suspect or carries one inline."""
        if "model" in payload:
            try:
                model = await asyncio.get_running_loop().run_in_executor(
                    None, model_from_wire, payload["model"]
                )
            except ValueError as exc:
                raise _HttpError(400, f"invalid model payload: {exc}") from exc
            raw_id = payload.get("suspect_id")
            if raw_id is not None and not isinstance(raw_id, str):
                raise _HttpError(400, "'suspect_id' must be a string")
            # Anonymous inline suspects get a unique per-request id: a shared
            # default id would let the batch dispatcher deduplicate two
            # *different* same-architecture models onto one entry and answer
            # one client with the other's verdict.
            suspect_id = raw_id or f"inline-{next(self._inline_ids)}"
            return suspect_id, model
        suspect_id = payload.get("suspect_id")
        if suspect_id is not None and not isinstance(suspect_id, str):
            raise _HttpError(400, "'suspect_id' must be a string")
        if not suspect_id:
            raise _HttpError(400, "provide 'suspect_id' (uploaded) or inline 'model'")
        with self._suspects_lock:
            entry = self._suspects.get(suspect_id)
            if entry is not None:
                self._suspects.move_to_end(suspect_id)
        if entry is None:
            raise _HttpError(404, f"unknown suspect id {suspect_id!r}")
        return suspect_id, entry[0]


# ----------------------------------------------------------------------
# Background runner (tests, examples, load generator)
# ----------------------------------------------------------------------
class ServerHandle:
    """An :class:`AsyncHttpServer` running on a dedicated event-loop thread.

    Works for any server built on the shared HTTP plumbing — a
    :class:`VerificationServer` shard or a fleet
    :class:`~repro.service.fleet.router.ShardRouter`.  Created via
    :func:`run_in_background` (or directly for non-default servers); usable
    as a context manager::

        with run_in_background(server) as handle:
            client = VerificationClient(port=handle.port)
            ...
    """

    def __init__(self, server: AsyncHttpServer) -> None:
        self.server = server
        self._loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self._stop: Optional[asyncio.Future] = None
        self._startup_error: Optional[BaseException] = None
        self._thread = threading.Thread(target=self._run, name="wm-server", daemon=True)

    @property
    def port(self) -> int:
        """The bound port (valid once started)."""
        return self.server.port

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)

        async def main() -> None:
            try:
                await self.server.start()
            except BaseException as exc:
                self._startup_error = exc
                self._ready.set()
                raise
            self._stop = self._loop.create_future()
            self._ready.set()
            try:
                await self._stop
            finally:
                await self.server.stop()

        try:
            self._loop.run_until_complete(main())
        except BaseException:
            if self._startup_error is None:
                logger.exception("server thread crashed")
        finally:
            self._loop.close()

    def start(self) -> "ServerHandle":
        """Start the thread and wait for the socket to be bound."""
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._startup_error is not None:
            raise RuntimeError(f"server failed to start: {self._startup_error}")
        if not self._ready.is_set():
            raise RuntimeError("server did not start within 30s")
        return self

    def close(self) -> None:
        """Stop the server and join the thread (idempotent)."""
        if self._thread.is_alive() and self._stop is not None:
            self._loop.call_soon_threadsafe(
                lambda: self._stop.done() or self._stop.set_result(None)
            )
        self._thread.join(timeout=30.0)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def run_in_background(server: Optional[VerificationServer] = None, **config_kwargs) -> ServerHandle:
    """Start a server on a background thread and return its handle.

    ``config_kwargs`` are forwarded to :class:`ServiceConfig` when no server
    instance is given.
    """
    if server is not None and config_kwargs:
        raise ValueError(
            "pass either a server instance or ServiceConfig kwargs, not both "
            f"(got {sorted(config_kwargs)})"
        )
    if server is None:
        server = VerificationServer(config=ServiceConfig(**config_kwargs))
    return ServerHandle(server).start()
