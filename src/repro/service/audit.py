"""Structured audit trail of ownership decisions.

Every verdict the service hands out is an IP-ownership claim, so each one is
recorded as a single JSON line: who asked (request id), which suspect, which
key, the full evidence (match counts, WER, false-claim probability), the
verdict and the serving context (batch id, queue time).  The JSONL form is
greppable and appendable.

:meth:`AuditLog.record` is thread-safe **and non-blocking**: the entry lands
in an in-memory ring buffer immediately, while the disk write + flush is
performed by a dedicated writer thread draining a bounded queue.  The server
therefore calls it inline from the event loop without stalling concurrent
handlers (an earlier per-request executor hop cost ~35% serving throughput).
The writer flushes whenever its queue runs dry, so entries are durable within
moments of the decision; :meth:`close` drains outstanding entries before
returning.
"""

from __future__ import annotations

import json
import queue
import threading
import time
from collections import deque
from pathlib import Path
from typing import Deque, Dict, List, Optional, Union

from repro.utils.logging import get_logger
from repro.utils.serialization import to_jsonable

__all__ = ["AuditLog"]

PathLike = Union[str, Path]

_STOP = object()


class AuditLog:
    """Thread-safe JSONL audit sink with a bounded in-memory tail.

    Parameters
    ----------
    path:
        File to append to (parent directories are created).  ``None`` keeps
        the log purely in memory.
    recent_entries:
        Size of the in-memory ring buffer exposed via :meth:`recent`.
    max_pending_writes:
        Bound on the disk-writer queue.  If the disk cannot keep up (or the
        writer died on an I/O error), ``record`` drops the *disk copy* of the
        entry and counts it in :attr:`dropped_writes` — the in-memory ring
        and counters always succeed, and the serving path never blocks on
        storage.  A dead writer never freezes the server.
    """

    def __init__(
        self,
        path: Optional[PathLike] = None,
        recent_entries: int = 256,
        max_pending_writes: int = 4096,
    ) -> None:
        self.path = Path(path) if path is not None else None
        self._lock = threading.Lock()
        self._recent: Deque[Dict[str, object]] = deque(maxlen=recent_entries)
        self._count = 0
        self._dropped = 0
        self._writer_failed = False
        self._queue: Optional["queue.Queue"] = None
        self._writer: Optional[threading.Thread] = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._queue = queue.Queue(maxsize=max_pending_writes)
            self._writer = threading.Thread(
                target=self._write_loop, name="wm-audit", daemon=True
            )
            self._writer.start()

    def _write_loop(self) -> None:
        try:
            with self.path.open("a", encoding="utf-8") as handle:
                while True:
                    item = self._queue.get()
                    if item is _STOP:
                        handle.flush()
                        return
                    handle.write(json.dumps(item, sort_keys=True) + "\n")
                    if self._queue.empty():
                        # Batch flushes: one fsync-able flush per drained
                        # burst instead of one per entry.
                        handle.flush()
        except Exception:
            get_logger("service.audit").exception(
                "audit writer failed; further entries stay in memory only"
            )
            with self._lock:
                self._writer_failed = True
            # Keep draining so producers never block on a dead writer; every
            # discarded entry is visible in dropped_writes.
            while True:
                item = self._queue.get()
                if item is _STOP:
                    return
                with self._lock:
                    self._dropped += 1

    def record(self, **entry: object) -> Dict[str, object]:
        """Append one entry (a ``ts`` timestamp is added automatically).

        Never blocks: if the disk-writer queue is full the entry is kept in
        memory only and counted in :attr:`dropped_writes`.
        """
        payload = {"ts": time.time()}
        payload.update(to_jsonable(entry))
        with self._lock:
            self._recent.append(payload)
            self._count += 1
        if self._queue is not None:
            try:
                self._queue.put_nowait(payload)
            except queue.Full:
                with self._lock:
                    self._dropped += 1
        return payload

    def recent(self, limit: int = 50) -> List[Dict[str, object]]:
        """The most recent ``limit`` entries, oldest first."""
        with self._lock:
            tail = list(self._recent)
        return tail[-limit:]

    @property
    def count(self) -> int:
        """Total entries recorded over the log's lifetime."""
        with self._lock:
            return self._count

    @property
    def dropped_writes(self) -> int:
        """Entries whose *disk copy* was skipped (full queue or dead writer)."""
        with self._lock:
            return self._dropped

    @property
    def writer_alive(self) -> bool:
        """Whether the durable-write path is healthy.

        ``True`` for a purely in-memory log (there is nothing to die) and
        for a running, never-failed writer thread.  ``False`` once the
        writer hit an I/O error and fell into drain-and-drop mode, or after
        its thread stopped — the "dead disk writer drops audit entries
        invisibly" condition ``/stats`` and ``/metrics`` surface.
        """
        with self._lock:
            if self._writer_failed:
                return False
        if self.path is None:
            return True
        writer = self._writer
        return writer is not None and writer.is_alive()

    def stats(self) -> Dict[str, object]:
        """JSON-able health snapshot for ``/stats``."""
        return {
            "entries": self.count,
            "dropped_writes": self.dropped_writes,
            "writer_alive": self.writer_alive,
            "path": None if self.path is None else str(self.path),
        }

    def close(self) -> None:
        """Drain pending writes, flush and stop the writer (idempotent)."""
        writer = self._writer
        if writer is not None:
            self._writer = None
            self._queue.put(_STOP)
            writer.join(timeout=30.0)

    def __enter__(self) -> "AuditLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
