"""The robustness gauntlet (Section 5.3 at scale).

A declarative attack registry of 11+ removal/forging scenarios
(:mod:`repro.robustness.attacks`), a parallel grid runner streaming its
ownership checks through a shared engine verification session — each
attacked model is verified and released as its worker finishes, so peak
memory is O(workers), not O(grid) — (:mod:`repro.robustness.gauntlet`) and
a report aggregation (:mod:`repro.robustness.report`).  The Figure 2a / 2b /
3 experiments, the ``repro gauntlet`` CLI sub-command and the verification
server's ``/robustness`` endpoint all run on this subsystem.

>>> from repro.robustness import Gauntlet, GauntletSubject, build_attack
>>> subject = GauntletSubject(model=watermarked, key=key, harness=harness)
>>> report = Gauntlet().run(
...     {"deploy-a": subject},
...     [build_attack("overwrite"), build_attack("pruning")],
...     strengths={"overwrite": (0, 100, 300), "pruning": (0.0, 0.5)},
... )
>>> report.min_wer_by_attack()
{'overwrite': 99.4, 'pruning': 97.2}
"""

from repro.robustness.attacks import (
    ATTACK_REGISTRY,
    AttackOutcome,
    AttackSpec,
    available_attacks,
    build_attack,
    corpus_free_attacks,
    register_attack,
)
from repro.robustness.checkpoint import CellCheckpoint, CheckpointError, grid_fingerprint
from repro.robustness.gauntlet import (
    Gauntlet,
    GauntletCancelled,
    GauntletConfig,
    GauntletSubject,
    run_gauntlet,
)
from repro.robustness.report import GauntletCellResult, RobustnessReport

__all__ = [
    "ATTACK_REGISTRY",
    "AttackOutcome",
    "AttackSpec",
    "available_attacks",
    "build_attack",
    "corpus_free_attacks",
    "register_attack",
    "CellCheckpoint",
    "CheckpointError",
    "grid_fingerprint",
    "Gauntlet",
    "GauntletCancelled",
    "GauntletConfig",
    "GauntletSubject",
    "run_gauntlet",
    "GauntletCellResult",
    "RobustnessReport",
]
