"""Append-only JSONL checkpoints for gauntlet grids.

A long (attack × strength × model) sweep is the paper's central evidence,
and before this module a crashed or evicted 10k-cell grid recomputed from
zero.  :class:`CellCheckpoint` makes sweeps resumable: one JSON line per
*completed* cell, appended as the cell finishes and fsynced in small
batches, headed by a **grid fingerprint** so a checkpoint can never be
replayed against a different grid.

The decision-digest guarantee survives the disk round trip because a
:class:`~repro.robustness.report.GauntletCellResult` is made of JSON-exact
scalars (floats, ints, bools, ``None`` and strings all round-trip
bit-identically through ``json``), and because the gauntlet always
reassembles the report in grid order — replayed cells slot back into the
same positions they were computed in, so
``RobustnessReport.decision_digest()`` of a resumed run equals the
uninterrupted run's byte for byte.

Both consumers share this module: ``repro gauntlet --resume <path>`` and
the verification server's job manager (``POST /v1/jobs/robustness``), whose
checkpoints are content-addressed by the same fingerprint so a restarted
server resumes a killed job from its own file.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from pathlib import Path
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple, Union

from repro.robustness.report import GauntletCellResult
from repro.utils.logging import get_logger

__all__ = [
    "CheckpointError",
    "CellCheckpoint",
    "grid_fingerprint",
    "merge_completed",
]

logger = get_logger("robustness.checkpoint")

#: Record-type tags of the JSONL stream.
_HEADER_KIND = "gauntlet-checkpoint"
_CELL_KIND = "cell"

#: Format version written into every header; bumped on incompatible layout
#: changes so an old file fails loudly instead of replaying garbage.
_FORMAT_VERSION = 1


class CheckpointError(ValueError):
    """A checkpoint file cannot be used for the requested grid."""


def grid_fingerprint(
    subject_ids: Sequence[str],
    attack_strengths: Mapping[str, Sequence[float]],
    seed: int,
    wer_threshold: float,
    max_false_claim_probability: Optional[float],
    evaluate_quality: bool,
    extra: Optional[Mapping[str, object]] = None,
) -> str:
    """Deterministic identity of one gauntlet grid + decision parameters.

    Two runs that would produce different decision digests must fingerprint
    differently, so everything the digest depends on is folded in: the
    subject ids, the (attack → strengths) grid, the RNG seed and the
    ownership thresholds.  ``extra`` lets callers bind additional identity
    (the server includes the suspect's content id, so re-uploading a
    *different* model under the same suspect id cannot resume a stale
    checkpoint).  Worker counts, execution modes and telemetry are absent by
    design — they never change decisions.
    """
    payload = {
        "subjects": list(subject_ids),
        "attacks": {
            name: [float(s) for s in sweep]
            for name, sweep in sorted(attack_strengths.items())
        },
        "seed": int(seed),
        "wer_threshold": float(wer_threshold),
        "max_false_claim_probability": (
            None
            if max_false_claim_probability is None
            else float(max_false_claim_probability)
        ),
        "evaluate_quality": bool(evaluate_quality),
        "extra": dict(extra or {}),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class CellCheckpoint:
    """Append-only JSONL store of completed gauntlet cells.

    Layout: a header line ``{"kind": "gauntlet-checkpoint", "version": 1,
    "fingerprint": ...}`` followed by one ``{"kind": "cell", "cell": {...}}``
    line per completed cell.  Appends are buffered and fsynced every
    ``fsync_every`` cells (and on :meth:`flush`/:meth:`close`), so a crash
    loses at most the last unsynced batch — never corrupts earlier lines.
    A torn final line (the crash landed mid-write) is tolerated on load and
    simply recomputed.

    Thread-safe: the gauntlet's completion hooks may fire from pool worker
    threads.
    """

    def __init__(
        self,
        path: Union[str, Path],
        fingerprint: str,
        fsync_every: int = 8,
    ) -> None:
        if fsync_every < 1:
            raise ValueError("fsync_every must be >= 1")
        self.path = Path(path)
        self.fingerprint = fingerprint
        self.fsync_every = int(fsync_every)
        self._lock = threading.Lock()
        self._handle = None
        self._unsynced = 0
        self._appended = 0

    # ------------------------------------------------------------------
    # Reading (resume)
    # ------------------------------------------------------------------
    def load(self) -> Dict[str, GauntletCellResult]:
        """Completed cells recorded on disk, keyed by ``cell_id``.

        Returns an empty mapping when the file does not exist yet.  Raises
        :class:`CheckpointError` when the file belongs to a different grid
        (fingerprint mismatch) or is not a checkpoint at all — resuming the
        wrong file must fail loudly, never silently skip cells.
        """
        if not self.path.exists():
            return {}
        completed: Dict[str, GauntletCellResult] = {}
        with open(self.path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        if not lines:
            return {}
        header = self._parse_line(lines[0], line_number=1)
        if header is None or header.get("kind") != _HEADER_KIND:
            raise CheckpointError(
                f"{self.path} is not a gauntlet checkpoint (bad header line)"
            )
        if header.get("version") != _FORMAT_VERSION:
            raise CheckpointError(
                f"{self.path} uses checkpoint format {header.get('version')!r}; "
                f"this build reads version {_FORMAT_VERSION}"
            )
        recorded = header.get("fingerprint")
        if recorded != self.fingerprint:
            raise CheckpointError(
                f"{self.path} was written for a different grid "
                f"(fingerprint {str(recorded)[:12]}… != {self.fingerprint[:12]}…); "
                "refusing to replay cells across grids"
            )
        for number, line in enumerate(lines[1:], start=2):
            record = self._parse_line(line, line_number=number)
            if record is None:
                # A torn tail line is the expected crash artifact; anything
                # torn *before* the end means later (well-formed) lines were
                # written after it, which append-only never produces.
                if number != len(lines):
                    raise CheckpointError(
                        f"{self.path}:{number}: corrupt record mid-file"
                    )
                logger.warning(
                    "%s: dropping torn final line %d (crash mid-write)",
                    self.path,
                    number,
                )
                break
            if record.get("kind") != _CELL_KIND or "cell" not in record:
                raise CheckpointError(
                    f"{self.path}:{number}: unexpected record kind "
                    f"{record.get('kind')!r}"
                )
            cell = GauntletCellResult.from_dict(record["cell"])
            completed[cell.cell_id] = cell
        return completed

    @staticmethod
    def _parse_line(line: str, line_number: int) -> Optional[dict]:
        try:
            parsed = json.loads(line)
        except json.JSONDecodeError:
            return None
        return parsed if isinstance(parsed, dict) else None

    # ------------------------------------------------------------------
    # Writing (append-only)
    # ------------------------------------------------------------------
    def append(self, cell: GauntletCellResult) -> None:
        """Record one completed cell (creates the file + header on first use)."""
        line = json.dumps(
            {"kind": _CELL_KIND, "cell": cell.to_dict()}, sort_keys=True
        )
        with self._lock:
            handle = self._open_locked()
            handle.write(line + "\n")
            self._appended += 1
            self._unsynced += 1
            if self._unsynced >= self.fsync_every:
                self._sync_locked()

    def flush(self) -> None:
        """Force the buffered tail to disk (fsync)."""
        with self._lock:
            if self._handle is not None:
                self._sync_locked()

    def close(self) -> None:
        """Flush and release the file handle (idempotent)."""
        with self._lock:
            if self._handle is not None:
                self._sync_locked()
                self._handle.close()
                self._handle = None

    @property
    def appended(self) -> int:
        """Cells appended through this writer instance."""
        with self._lock:
            return self._appended

    def _open_locked(self):
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fresh = not self.path.exists() or self.path.stat().st_size == 0
            self._handle = open(self.path, "a", encoding="utf-8")
            if fresh:
                header = json.dumps(
                    {
                        "kind": _HEADER_KIND,
                        "version": _FORMAT_VERSION,
                        "fingerprint": self.fingerprint,
                    },
                    sort_keys=True,
                )
                self._handle.write(header + "\n")
                self._sync_locked()
        return self._handle

    def _sync_locked(self) -> None:
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._unsynced = 0

    def __enter__(self) -> "CellCheckpoint":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def merge_completed(
    ordered_cell_ids: Iterable[str],
    completed: Mapping[str, GauntletCellResult],
    fresh: Mapping[str, GauntletCellResult],
) -> Tuple[list, int]:
    """Reassemble a grid-ordered cell list from replayed + fresh results.

    Returns ``(cells, replayed)`` where ``cells`` follows
    ``ordered_cell_ids`` exactly — the ordering half of the resumed ≡
    uninterrupted digest guarantee (the other half is JSON round-trip
    exactness, see the module docstring).
    """
    cells = []
    replayed = 0
    for cell_id in ordered_cell_ids:
        if cell_id in fresh:
            cells.append(fresh[cell_id])
        elif cell_id in completed:
            cells.append(completed[cell_id])
            replayed += 1
    return cells, replayed
