"""Declarative attack registry for the robustness gauntlet.

Every removal attack in the repository — parameter overwriting,
re-watermarking, magnitude pruning, LoRA fine-tuning and re-quantization —
is wrapped behind one uniform interface:

    ``spec.apply(model, strength, rng) -> AttackOutcome``

so the :class:`~repro.robustness.gauntlet.Gauntlet` can execute arbitrary
(attack × strength × model) grids without knowing any attack's plumbing.
``strength`` is the attack's own sweep axis (weights per layer, bits per
layer, sparsity fraction, fine-tuning steps, target bit-width) and ``rng``
is a per-cell generator derived by the gauntlet from its seed, so a grid's
outcome is a pure function of (subjects, attacks, strengths, seed) — never
of execution order or worker count.

Specs that need attacker-side resources (a calibration corpus for
re-watermarking and fine-tuning) receive them at construction time via
:func:`build_attack`, keeping ``apply`` itself resource-free.  New attack
scenarios plug in with :func:`register_attack`:

>>> @register_attack
... class BitFlipAttack:
...     name = "bit-flip"
...     ...
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Type

import numpy as np

from repro.attacks.overwrite import OverwriteAttackConfig, parameter_overwrite_attack
from repro.attacks.pruning import PruningAttackConfig, magnitude_pruning_attack
from repro.attacks.rewatermark import RewatermarkAttackConfig, rewatermark_attack
from repro.core.keys import WatermarkKey
from repro.quant.base import QuantizedModel

__all__ = [
    "AttackOutcome",
    "AttackSpec",
    "ATTACK_REGISTRY",
    "register_attack",
    "build_attack",
    "available_attacks",
    "corpus_free_attacks",
    "IdentityAttack",
    "OverwriteAttack",
    "RewatermarkAttack",
    "PruningAttack",
    "LoRAFineTuneAttack",
    "RequantizeAttack",
]


@dataclass
class AttackOutcome:
    """What one attack application produced.

    Attributes
    ----------
    model:
        The attacked model (always a copy; the subject is never mutated).
    attacker_key:
        The adversary's own watermark key, for attacks that insert one
        (re-watermarking).  The gauntlet additionally extracts the attacker's
        signature when this is present.
    info:
        Attack-specific JSON-able diagnostics (e.g. the LoRA attack's final
        loss, or whether the quantized weights moved).
    """

    model: QuantizedModel
    attacker_key: Optional[WatermarkKey] = None
    info: Dict[str, object] = field(default_factory=dict)


class AttackSpec:
    """Base class of registry attacks.

    Subclasses define the class attributes below and implement
    :meth:`apply`.  ``strength`` semantics are attack-specific; the
    ``strength_unit`` string documents them for reports and tables.
    """

    #: Registry name (also the CLI / server identifier).
    name: str = "abstract"
    #: Human-readable unit of the strength axis.
    strength_unit: str = ""
    #: Default sweep used when the caller does not pick strengths.
    default_strengths: Sequence[float] = ()
    #: Whether construction needs an attacker-side calibration corpus.
    requires_corpus: bool = False

    def apply(
        self, model: QuantizedModel, strength: float, rng: np.random.Generator
    ) -> AttackOutcome:
        """Attack ``model`` at ``strength`` and return the outcome."""
        raise NotImplementedError

    def describe(self) -> Dict[str, object]:
        """JSON-able description (used by reports and the service)."""
        return {
            "name": self.name,
            "strength_unit": self.strength_unit,
            "default_strengths": list(self.default_strengths),
            "requires_corpus": self.requires_corpus,
        }


ATTACK_REGISTRY: Dict[str, Type[AttackSpec]] = {}


def register_attack(cls: Type[AttackSpec]) -> Type[AttackSpec]:
    """Class decorator adding an :class:`AttackSpec` to the registry."""
    if not getattr(cls, "name", None) or cls.name == "abstract":
        raise ValueError("attack specs must define a non-empty registry name")
    if cls.name in ATTACK_REGISTRY:
        raise ValueError(f"attack {cls.name!r} is already registered")
    ATTACK_REGISTRY[cls.name] = cls
    return cls


def available_attacks() -> List[str]:
    """Sorted names of every registered attack."""
    return sorted(ATTACK_REGISTRY)


def corpus_free_attacks() -> List[str]:
    """Names of attacks that need no attacker-side corpus (server-safe)."""
    return sorted(
        name for name, cls in ATTACK_REGISTRY.items() if not cls.requires_corpus
    )


def build_attack(name: str, calibration_corpus=None, **kwargs) -> AttackSpec:
    """Instantiate a registered attack by name.

    Parameters
    ----------
    name:
        Registry name (see :func:`available_attacks`).
    calibration_corpus:
        Attacker-side corpus, forwarded to specs with
        ``requires_corpus=True`` and ignored otherwise.
    kwargs:
        Spec-specific constructor arguments (e.g. ``style`` for overwrite).
    """
    try:
        cls = ATTACK_REGISTRY[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown attack {name!r}; available: {available_attacks()}"
        ) from exc
    if cls.requires_corpus:
        if calibration_corpus is None:
            raise ValueError(
                f"attack {name!r} needs an attacker-side calibration corpus"
            )
        return cls(calibration_corpus=calibration_corpus, **kwargs)
    return cls(**kwargs)


def _derived_seed(rng: np.random.Generator) -> int:
    """A 31-bit seed drawn from the cell generator (deterministic per cell)."""
    return int(rng.integers(0, 2**31 - 1))


# ----------------------------------------------------------------------
# Built-in specs
# ----------------------------------------------------------------------
@register_attack
class IdentityAttack(AttackSpec):
    """No-op attack: the unmodified subject.

    Used for baseline rows of every sweep and for capacity studies (Figure
    3), where each subject carries a different payload and the interesting
    measurement is quality + WER of the *untouched* watermarked model.
    """

    name = "none"
    strength_unit = "-"
    default_strengths = (0,)

    def apply(self, model, strength, rng):
        return AttackOutcome(model=model.clone())


@register_attack
class OverwriteAttack(AttackSpec):
    """Parameter overwriting (Figure 2a); strength = weights per layer."""

    name = "overwrite"
    strength_unit = "weights/layer"
    default_strengths = (0, 100, 200, 300, 400, 500)

    def __init__(self, style: str = "resample") -> None:
        self.style = style

    def apply(self, model, strength, rng):
        config = OverwriteAttackConfig(
            weights_per_layer=int(strength), style=self.style, seed=_derived_seed(rng)
        )
        return AttackOutcome(model=parameter_overwrite_attack(model, config))

    def describe(self):
        return {**super().describe(), "style": self.style}


@register_attack
class RewatermarkAttack(AttackSpec):
    """Re-watermarking (Figure 2b); strength = attacker bits per layer.

    The adversary's hyper-parameters default to the paper's (α=1, β=1.5,
    seed 22); activations are measured on the quantized model via the
    attacker-side calibration corpus.
    """

    name = "rewatermark"
    strength_unit = "bits/layer"
    default_strengths = (0, 100, 150, 200, 250, 300)
    requires_corpus = True

    def __init__(self, calibration_corpus, **config_overrides) -> None:
        self.calibration_corpus = calibration_corpus
        self.config_overrides = config_overrides

    def apply(self, model, strength, rng):
        if int(strength) == 0:
            return AttackOutcome(model=model.clone())
        config = RewatermarkAttackConfig(
            bits_per_layer=int(strength), **self.config_overrides
        )
        attacked, attacker_key = rewatermark_attack(
            model, config, calibration_corpus=self.calibration_corpus
        )
        return AttackOutcome(model=attacked, attacker_key=attacker_key)


@register_attack
class PruningAttack(AttackSpec):
    """Magnitude pruning; strength = sparsity fraction in [0, 1]."""

    name = "pruning"
    strength_unit = "sparsity"
    default_strengths = (0.0, 0.3, 0.6, 0.9)

    def apply(self, model, strength, rng):
        config = PruningAttackConfig(sparsity=float(strength))
        return AttackOutcome(model=magnitude_pruning_attack(model, config))


@register_attack
class LoRAFineTuneAttack(AttackSpec):
    """QLoRA-style fine-tuning; strength = optimization steps.

    The quantized weights are frozen by construction, so the outcome's
    ``info`` records the mechanical proof (``weights_unchanged``) plus the
    attacker's final loss (showing the adapters actually trained).
    """

    name = "lora-finetune"
    strength_unit = "steps"
    default_strengths = (0, 20, 60)
    requires_corpus = True

    def __init__(self, calibration_corpus, rank: int = 4) -> None:
        self.calibration_corpus = calibration_corpus
        self.rank = rank

    def apply(self, model, strength, rng):
        if int(strength) == 0:
            return AttackOutcome(model=model.clone())
        # Imported lazily: the finetune package pulls in the training stack.
        from repro.attacks.finetune_attack import lora_finetune_attack
        from repro.finetune.lora import LoRAConfig

        config = LoRAConfig(
            rank=self.rank, steps=int(strength), seed=_derived_seed(rng)
        )
        result = lora_finetune_attack(model.clone(), self.calibration_corpus, config=config)
        return AttackOutcome(
            model=result.attacked_model,
            info={
                "weights_unchanged": bool(result.quantized_weights_unchanged),
                "final_loss": float(result.final_loss),
            },
        )


@register_attack
class RequantizeAttack(AttackSpec):
    """Re-quantization: dequantize and round-trip through RTN.

    Strength = target bit-width.  Whether the watermark survives depends on
    how far the attacker's grid is from the deployed one: a plain RTN model
    round-trips almost losslessly (the watermark rides along), while
    smoothing- or scale-changing deployments (SmoothQuant / AWQ) re-derive
    different integer levels and the integer-domain signature dissolves.
    The paper does not sweep this scenario — the registry exists to measure
    exactly such gaps.
    """

    name = "requantize"
    strength_unit = "bits"
    default_strengths = (8, 6, 4)

    def apply(self, model, strength, rng):
        # Imported lazily to avoid a repro.quant.api ↔ attacks import cycle
        # at package-init time.
        from repro.quant.api import quantize_model

        requantized = quantize_model(model.materialize(), "rtn", bits=int(strength))
        return AttackOutcome(
            model=requantized, info={"requantized_bits": int(strength)}
        )
