"""Declarative attack registry for the robustness gauntlet.

Every removal and forging attack in the repository — parameter overwriting,
re-watermarking, magnitude pruning, LoRA fine-tuning, RTN and GPTQ
re-quantization, scale tampering, outlier-column rewrites, structured
head/row pruning, the adaptive (algorithm-aware) attacker and
distillation-style model souping — is wrapped behind one uniform interface:

    ``spec.apply(model, strength, rng) -> AttackOutcome``

so the :class:`~repro.robustness.gauntlet.Gauntlet` can execute arbitrary
(attack × strength × model) grids without knowing any attack's plumbing.
``strength`` is the attack's own sweep axis (weights per layer, bits per
layer, sparsity fraction, fine-tuning steps, target bit-width) and ``rng``
is a per-cell generator derived by the gauntlet from its seed, so a grid's
outcome is a pure function of (subjects, attacks, strengths, seed) — never
of execution order or worker count.

Specs that need attacker-side resources (a calibration corpus for
re-watermarking and fine-tuning) receive them at construction time via
:func:`build_attack`, keeping ``apply`` itself resource-free.  New attack
scenarios plug in with :func:`register_attack`:

>>> @register_attack
... class BitFlipAttack:
...     name = "bit-flip"
...     ...
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Type

import numpy as np

from repro.attacks.overwrite import OverwriteAttackConfig, parameter_overwrite_attack
from repro.attacks.pruning import PruningAttackConfig, magnitude_pruning_attack
from repro.attacks.rewatermark import RewatermarkAttackConfig, rewatermark_attack
from repro.core.keys import WatermarkKey
from repro.quant.base import QuantizedLinear, QuantizedModel
from repro.quant.llm_int8 import rewrite_outlier_entries

__all__ = [
    "AttackOutcome",
    "AttackSpec",
    "ATTACK_REGISTRY",
    "register_attack",
    "build_attack",
    "available_attacks",
    "corpus_free_attacks",
    "IdentityAttack",
    "OverwriteAttack",
    "RewatermarkAttack",
    "PruningAttack",
    "LoRAFineTuneAttack",
    "RequantizeAttack",
    "ScaleTamperingAttack",
    "OutlierColumnAttack",
    "StructuredPruningAttack",
    "AdaptiveOverwriteAttack",
    "OracleAdaptiveOverwriteAttack",
    "SoupAttack",
    "GPTQRequantizeAttack",
]


@dataclass
class AttackOutcome:
    """What one attack application produced.

    Attributes
    ----------
    model:
        The attacked model (always a copy; the subject is never mutated).
    attacker_key:
        The adversary's own watermark key, for attacks that insert one
        (re-watermarking).  The gauntlet additionally extracts the attacker's
        signature when this is present.
    info:
        Attack-specific JSON-able diagnostics (e.g. the LoRA attack's final
        loss, or whether the quantized weights moved).
    """

    model: QuantizedModel
    attacker_key: Optional[WatermarkKey] = None
    info: Dict[str, object] = field(default_factory=dict)


class AttackSpec:
    """Base class of registry attacks.

    Subclasses define the class attributes below and implement
    :meth:`apply`.  ``strength`` semantics are attack-specific; the
    ``strength_unit`` string documents them for reports and tables.
    """

    #: Registry name (also the CLI / server identifier).
    name: str = "abstract"
    #: Human-readable unit of the strength axis.
    strength_unit: str = ""
    #: Default sweep used when the caller does not pick strengths.
    default_strengths: Sequence[float] = ()
    #: Whether construction needs an attacker-side calibration corpus.
    requires_corpus: bool = False
    #: Whether construction needs the virgin (pre-watermark) base model and
    #: its activation statistics — the true two-clone scenarios, where the
    #: "attack" is another legitimate custody of the same open base.
    requires_base_model: bool = False

    def apply(
        self, model: QuantizedModel, strength: float, rng: np.random.Generator
    ) -> AttackOutcome:
        """Attack ``model`` at ``strength`` and return the outcome."""
        raise NotImplementedError

    def describe(self) -> Dict[str, object]:
        """JSON-able description (used by reports and the service)."""
        return {
            "name": self.name,
            "strength_unit": self.strength_unit,
            "default_strengths": list(self.default_strengths),
            "requires_corpus": self.requires_corpus,
            "requires_base_model": self.requires_base_model,
        }


ATTACK_REGISTRY: Dict[str, Type[AttackSpec]] = {}


def register_attack(cls: Type[AttackSpec]) -> Type[AttackSpec]:
    """Class decorator adding an :class:`AttackSpec` to the registry."""
    if not getattr(cls, "name", None) or cls.name == "abstract":
        raise ValueError("attack specs must define a non-empty registry name")
    if cls.name in ATTACK_REGISTRY:
        raise ValueError(f"attack {cls.name!r} is already registered")
    ATTACK_REGISTRY[cls.name] = cls
    return cls


def available_attacks() -> List[str]:
    """Sorted names of every registered attack."""
    return sorted(ATTACK_REGISTRY)


def corpus_free_attacks() -> List[str]:
    """Names of attacks needing no attacker-side resources (server-safe).

    Excludes both corpus-backed specs and the true two-clone scenarios that
    need the virgin base model — the verification server holds keys and
    suspect snapshots only.
    """
    return sorted(
        name
        for name, cls in ATTACK_REGISTRY.items()
        if not cls.requires_corpus and not cls.requires_base_model
    )


def build_attack(
    name: str,
    calibration_corpus=None,
    base_model=None,
    base_activations=None,
    **kwargs,
) -> AttackSpec:
    """Instantiate a registered attack by name.

    Parameters
    ----------
    name:
        Registry name (see :func:`available_attacks`).
    calibration_corpus:
        Attacker-side corpus, forwarded to specs with
        ``requires_corpus=True`` and ignored otherwise.
    base_model, base_activations:
        The virgin (pre-watermark) quantized base and its activation
        statistics, forwarded to specs with ``requires_base_model=True``
        (the true two-clone scenarios) and ignored otherwise.
    kwargs:
        Spec-specific constructor arguments (e.g. ``style`` for overwrite).
    """
    try:
        cls = ATTACK_REGISTRY[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown attack {name!r}; available: {available_attacks()}"
        ) from exc
    init_kwargs = dict(kwargs)
    if cls.requires_corpus:
        if calibration_corpus is None:
            raise ValueError(
                f"attack {name!r} needs an attacker-side calibration corpus"
            )
        init_kwargs["calibration_corpus"] = calibration_corpus
    if cls.requires_base_model:
        if base_model is None or base_activations is None:
            raise ValueError(
                f"attack {name!r} needs the virgin base model and its activation "
                "statistics (base_model=..., base_activations=...)"
            )
        init_kwargs["base_model"] = base_model
        init_kwargs["base_activations"] = base_activations
    return cls(**init_kwargs)


def _derived_seed(rng: np.random.Generator) -> int:
    """A 31-bit seed drawn from the cell generator (deterministic per cell)."""
    return int(rng.integers(0, 2**31 - 1))


class _PerSubjectMemo:
    """Memoizes one expensive per-subject computation (adaptive attackers).

    A lock guards the memo maps only; the computation itself runs under a
    per-model lock (same protocol as ``FleetVerificationSession``), so
    distinct subjects compute concurrently while same-subject races share
    one computation.  Entries are keyed by ``id(model)`` and hold weakrefs —
    an id-reused object cannot alias a stale entry; dead entries are pruned
    on the next miss, no GC callbacks needed.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._by_model: Dict[int, Tuple[weakref.ref, object]] = {}
        self._compute_locks: Dict[int, threading.Lock] = {}

    def __reduce__(self):
        # Locks and weakrefs don't pickle, and a memo keyed by ``id(model)``
        # is meaningless in another process anyway: attacks shipped to
        # process-pool gauntlet workers carry an *empty* memo and re-warm it
        # against the worker's own shared-memory model views.  (A plain
        # ``__getstate__`` returning ``{}`` would be skipped by pickle for
        # being falsy, so the reconstruction is spelled as ``__reduce__``.)
        return (self.__class__, ())

    def get(self, model: QuantizedModel, compute):
        key = id(model)
        with self._lock:
            entry = self._by_model.get(key)
            if entry is not None and entry[0]() is model:
                return entry[1]
            for dead in [k for k, (ref, _) in self._by_model.items() if ref() is None]:
                del self._by_model[dead]
                self._compute_locks.pop(dead, None)
            compute_lock = self._compute_locks.setdefault(key, threading.Lock())
        with compute_lock:
            with self._lock:
                entry = self._by_model.get(key)
                if entry is not None and entry[0]() is model:
                    return entry[1]
            value = compute()
            with self._lock:
                self._by_model[key] = (weakref.ref(model), value)
            return value


# ----------------------------------------------------------------------
# Built-in specs
# ----------------------------------------------------------------------
@register_attack
class IdentityAttack(AttackSpec):
    """No-op attack: the unmodified subject.

    Used for baseline rows of every sweep and for capacity studies (Figure
    3), where each subject carries a different payload and the interesting
    measurement is quality + WER of the *untouched* watermarked model.
    """

    name = "none"
    strength_unit = "-"
    default_strengths = (0,)

    def apply(self, model, strength, rng):
        return AttackOutcome(model=model.clone())


@register_attack
class OverwriteAttack(AttackSpec):
    """Parameter overwriting (Figure 2a); strength = weights per layer."""

    name = "overwrite"
    strength_unit = "weights/layer"
    default_strengths = (0, 100, 200, 300, 400, 500)

    def __init__(self, style: str = "resample") -> None:
        self.style = style

    def apply(self, model, strength, rng):
        config = OverwriteAttackConfig(
            weights_per_layer=int(strength), style=self.style, seed=_derived_seed(rng)
        )
        return AttackOutcome(model=parameter_overwrite_attack(model, config))

    def describe(self):
        return {**super().describe(), "style": self.style}


@register_attack
class RewatermarkAttack(AttackSpec):
    """Re-watermarking (Figure 2b); strength = attacker bits per layer.

    The adversary's hyper-parameters default to the paper's (α=1, β=1.5,
    seed 22); activations are measured on the quantized model via the
    attacker-side calibration corpus.
    """

    name = "rewatermark"
    strength_unit = "bits/layer"
    default_strengths = (0, 100, 150, 200, 250, 300)
    requires_corpus = True

    def __init__(self, calibration_corpus, **config_overrides) -> None:
        self.calibration_corpus = calibration_corpus
        self.config_overrides = config_overrides

    def apply(self, model, strength, rng):
        if int(strength) == 0:
            return AttackOutcome(model=model.clone())
        config = RewatermarkAttackConfig(
            bits_per_layer=int(strength), **self.config_overrides
        )
        attacked, attacker_key = rewatermark_attack(
            model, config, calibration_corpus=self.calibration_corpus
        )
        return AttackOutcome(model=attacked, attacker_key=attacker_key)


@register_attack
class PruningAttack(AttackSpec):
    """Magnitude pruning; strength = sparsity fraction in [0, 1]."""

    name = "pruning"
    strength_unit = "sparsity"
    default_strengths = (0.0, 0.3, 0.6, 0.9)

    def apply(self, model, strength, rng):
        config = PruningAttackConfig(sparsity=float(strength))
        return AttackOutcome(model=magnitude_pruning_attack(model, config))


@register_attack
class LoRAFineTuneAttack(AttackSpec):
    """QLoRA-style fine-tuning; strength = optimization steps.

    The quantized weights are frozen by construction, so the outcome's
    ``info`` records the mechanical proof (``weights_unchanged``) plus the
    attacker's final loss (showing the adapters actually trained).
    """

    name = "lora-finetune"
    strength_unit = "steps"
    default_strengths = (0, 20, 60)
    requires_corpus = True

    def __init__(self, calibration_corpus, rank: int = 4) -> None:
        self.calibration_corpus = calibration_corpus
        self.rank = rank

    def apply(self, model, strength, rng):
        if int(strength) == 0:
            return AttackOutcome(model=model.clone())
        # Imported lazily: the finetune package pulls in the training stack.
        from repro.attacks.finetune_attack import lora_finetune_attack
        from repro.finetune.lora import LoRAConfig

        config = LoRAConfig(
            rank=self.rank, steps=int(strength), seed=_derived_seed(rng)
        )
        result = lora_finetune_attack(model.clone(), self.calibration_corpus, config=config)
        return AttackOutcome(
            model=result.attacked_model,
            info={
                "weights_unchanged": bool(result.quantized_weights_unchanged),
                "final_loss": float(result.final_loss),
            },
        )


@register_attack
class RequantizeAttack(AttackSpec):
    """Re-quantization: dequantize and round-trip through RTN.

    Strength = target bit-width.  Whether the watermark survives depends on
    how far the attacker's grid is from the deployed one: a plain RTN model
    round-trips almost losslessly (the watermark rides along), while
    smoothing- or scale-changing deployments (SmoothQuant / AWQ) re-derive
    different integer levels and the integer-domain signature dissolves.
    The paper does not sweep this scenario — the registry exists to measure
    exactly such gaps.
    """

    name = "requantize"
    strength_unit = "bits"
    default_strengths = (8, 6, 4)

    def apply(self, model, strength, rng):
        # Imported lazily to avoid a repro.quant.api ↔ attacks import cycle
        # at package-init time.
        from repro.quant.api import quantize_model

        requantized = quantize_model(model.materialize(), "rtn", bits=int(strength))
        return AttackOutcome(
            model=requantized, info={"requantized_bits": int(strength)}
        )


@register_attack
class GPTQRequantizeAttack(AttackSpec):
    """Re-quantization through GPTQ's error-compensated rounding.

    Strength = target bit-width.  The plain :class:`RequantizeAttack` rounds
    each weight independently (RTN), so a matching grid round-trips almost
    losslessly and the watermark rides along.  GPTQ instead quantizes column
    by column and pushes every column's rounding residue onto the columns not
    yet quantized, so integer levels move *even at the deployed bit-width* —
    a structurally different threat to an integer-domain signature, which is
    why the gauntlet measures it separately.  The adversary needs his own
    calibration corpus to estimate the layer Hessians.
    """

    name = "gptq-requantize"
    strength_unit = "bits"
    default_strengths = (8, 4)
    requires_corpus = True

    def __init__(self, calibration_corpus, damping: float = 0.01, act_order: bool = True) -> None:
        self.calibration_corpus = calibration_corpus
        self.damping = damping
        self.act_order = act_order

    def apply(self, model, strength, rng):
        # Imported lazily: repro.quant.gptq's hook pulls in repro.quant.api.
        from repro.quant.gptq import gptq_requantize

        requantized = gptq_requantize(
            model,
            int(strength),
            self.calibration_corpus,
            damping=self.damping,
            act_order=self.act_order,
        )
        return AttackOutcome(
            model=requantized,
            info={"requantized_bits": int(strength), "method": "gptq"},
        )


@register_attack
class ScaleTamperingAttack(AttackSpec):
    """Scale tampering: perturb the float side of the quantization.

    Strength = relative perturbation bound.  Every per-output-channel
    ``scale`` (and, where present, every per-input-channel smoothing factor)
    is multiplied by a factor drawn uniformly from ``[1 − s, 1 + s]``; the
    integer weights — the only thing extraction reads — are untouched.  This
    probes whether an adversary can trade model quality against the watermark
    *outside* the integer domain: the expected answer (and the measured one)
    is that the WER stays at 100% while quality falls, i.e. the float side
    offers no removal leverage at all.
    """

    name = "scale-tamper"
    strength_unit = "rel-perturbation"
    default_strengths = (0.0, 0.05, 0.1, 0.3)
    #: Multiplicative factors are clipped here so a large strength cannot
    #: zero or sign-flip a scale (which no rational attacker would ship).
    MIN_FACTOR = 0.05

    def __init__(self, tamper_smoothing: bool = True) -> None:
        self.tamper_smoothing = tamper_smoothing

    def apply(self, model, strength, rng):
        bound = float(strength)
        if bound < 0:
            raise ValueError("scale-tamper strength must be >= 0")
        attacked = model.clone()
        if bound == 0.0:
            return AttackOutcome(model=attacked)
        smoothed_layers = 0
        for layer in attacked.iter_layers():
            factors = 1.0 + rng.uniform(-bound, bound, size=layer.scale.shape)
            layer.scale = layer.scale * np.maximum(factors, self.MIN_FACTOR)
            if self.tamper_smoothing and layer.input_smoothing is not None:
                smoothing_factors = 1.0 + rng.uniform(
                    -bound, bound, size=layer.input_smoothing.shape
                )
                layer.input_smoothing = layer.input_smoothing * np.maximum(
                    smoothing_factors, self.MIN_FACTOR
                )
                smoothed_layers += 1
        return AttackOutcome(
            model=attacked,
            info={"weight_int_untouched": True, "layers_with_smoothing": smoothed_layers},
        )

    def describe(self):
        return {**super().describe(), "tamper_smoothing": self.tamper_smoothing}


@register_attack
class OutlierColumnAttack(AttackSpec):
    """Rewrite the full-precision outlier columns of LLM.int8() models.

    Strength = fraction of outlier entries resampled.  The inverse of the
    overwrite-placement fix: ``effective_weight()`` re-inserts
    ``outlier_weight`` verbatim over whatever the integer tensor holds, so
    rewriting those entries damages exactly the channels LLM.int8() deemed
    most activation-critical while leaving the integer-domain watermark
    untouched — quality collapses, WER stays at 100%.  On backends without an
    outlier decomposition the attack is a measured no-op (``info`` says so).
    """

    name = "outlier-rewrite"
    strength_unit = "fraction"
    default_strengths = (0.0, 0.5, 1.0)

    def apply(self, model, strength, rng):
        fraction = float(strength)
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("outlier-rewrite strength must be in [0, 1]")
        attacked = model.clone()
        rewritten = 0
        outlier_layers = 0
        for layer in attacked.iter_layers():
            if layer.outlier_weight is not None:
                outlier_layers += 1
            rewritten += rewrite_outlier_entries(layer, fraction, rng)
        return AttackOutcome(
            model=attacked,
            info={
                "entries_rewritten": rewritten,
                "layers_with_outliers": outlier_layers,
                "weight_int_untouched": True,
            },
        )


@register_attack
class StructuredPruningAttack(AttackSpec):
    """Structured pruning: remove whole attention heads and MLP rows.

    Strength = fraction of structure removed per block.  Unlike magnitude
    pruning (scattered zeros, same shapes), this attack physically deletes
    output rows: the head rows of every ``q/k/v`` projection and a matching
    fraction of each ``mlp.fc_in``'s hidden rows.  The attacked tensors are
    genuinely narrower, so ownership verification exercises the
    ``strict_layout=False`` path — reshaped layers cannot be aligned with the
    key's reference and contribute 0% WER, while the untouched ``o_proj`` /
    ``fc_out`` layers keep their bits.  Quality evaluation still works: the
    kept rows are recorded in ``metadata["pruned_rows"]`` and
    :meth:`~repro.quant.base.QuantizedModel.materialize` scatters them back
    into zero-filled full-shape matrices (a removed row computes exactly
    nothing).  The measured story is honest and two-sided: structured pruning
    *does* break verification alignment — at the price of deleting a fraction
    of every block, which destroys the model long before a competitor could
    resell it.
    """

    name = "structured-prune"
    strength_unit = "fraction"
    default_strengths = (0.0, 0.25, 0.5)

    def apply(self, model, strength, rng):
        fraction = float(strength)
        if not 0.0 <= fraction < 1.0:
            raise ValueError("structured-prune strength must be in [0, 1)")
        attacked = model.clone()
        if fraction == 0.0:
            return AttackOutcome(model=attacked)
        n_heads = attacked.config.n_heads
        head_dim = attacked.config.d_model // n_heads
        heads_to_drop = min(int(round(fraction * n_heads)), n_heads - 1)
        # Head choices are drawn per block *before* the layer loop, in block
        # order, so q/k/v of one block lose the same heads and the draw
        # sequence never depends on dict iteration details.
        dropped_heads = {
            block: np.sort(rng.choice(n_heads, size=heads_to_drop, replace=False))
            for block in range(attacked.config.n_layers)
        } if heads_to_drop else {}
        pruned_rows: Dict[str, Dict[str, object]] = {}
        rows_removed = 0
        for name in attacked.layer_names():
            layer = attacked.layers[name]
            if name.endswith((".attn.q_proj", ".attn.k_proj", ".attn.v_proj")):
                block = int(name.split(".")[1])
                heads = dropped_heads.get(block)
                if heads is None:
                    continue
                drop = np.concatenate(
                    [np.arange(h * head_dim, (h + 1) * head_dim) for h in heads]
                )
            elif name.endswith(".mlp.fc_in"):
                count = min(
                    int(round(fraction * layer.out_features)), layer.out_features - 1
                )
                if count <= 0:
                    continue
                drop = np.sort(rng.choice(layer.out_features, size=count, replace=False))
            else:
                continue
            kept = np.setdiff1d(np.arange(layer.out_features), drop)
            attacked.layers[name] = _remove_rows(layer, kept)
            pruned_rows[name] = {
                "out_features": int(layer.out_features),
                "kept_rows": kept,
            }
            rows_removed += int(drop.size)
        if pruned_rows:
            attacked.metadata["pruned_rows"] = pruned_rows
        return AttackOutcome(
            model=attacked,
            info={
                "rows_removed": rows_removed,
                "layers_reshaped": len(pruned_rows),
                "heads_dropped_per_block": heads_to_drop,
            },
        )


def _remove_rows(layer: QuantizedLinear, kept: np.ndarray) -> QuantizedLinear:
    """A copy of ``layer`` keeping only the output rows in ``kept``."""
    return QuantizedLinear(
        name=layer.name,
        weight_int=layer.weight_int[kept].copy(),
        scale=layer.scale[kept].copy(),
        grid=layer.grid,
        bias=None if layer.bias is None else layer.bias[kept].copy(),
        input_smoothing=(
            None if layer.input_smoothing is None else layer.input_smoothing.copy()
        ),
        outlier_columns=(
            None if layer.outlier_columns is None else layer.outlier_columns.copy()
        ),
        outlier_weight=(
            None if layer.outlier_weight is None else layer.outlier_weight[kept].copy()
        ),
    )


@register_attack
class AdaptiveOverwriteAttack(AttackSpec):
    """The adaptive attacker: EmMark's own scoring turned against it.

    Strength = overwrites per layer (the Figure 2a axis).  The adversary
    knows the published algorithm — scoring function, pool rule, everything
    except the owner's secrets — so instead of spraying random positions he
    re-runs candidate selection himself: activations are *estimated* by
    running the quantized model he holds over his own corpus (he has no
    full-precision model), scoring is repeated at several (α, β) guesses, and
    the overwrites are concentrated on the **union** of the guessed candidate
    pools.

    What the resulting WER measures is the secrecy provided by the seed ``d``
    alone: even when the union pool covers the owner's true candidate pool,
    the attacker cannot tell *which* pool positions carry bits, so removing
    the watermark still requires rewriting a pool-sized fraction of the layer
    — the quality cost the quality columns record.  ``info`` reports how far
    each layer's union pool is from that worst case.
    """

    name = "adaptive-overwrite"
    strength_unit = "weights/layer"
    default_strengths = (0, 100, 200, 300)
    requires_corpus = True

    #: (α, β) guesses bracketing the published defaults (0.5/0.5) and the
    #: single-score extremes.
    DEFAULT_GUESSES = ((0.5, 0.5), (1.0, 1.5), (1.0, 0.0), (0.0, 1.0))

    def __init__(
        self,
        calibration_corpus,
        guesses: Sequence[Tuple[float, float]] = DEFAULT_GUESSES,
        pool_fraction: float = 0.25,
    ) -> None:
        if not guesses:
            raise ValueError("adaptive attacker needs at least one (alpha, beta) guess")
        if not 0.0 < pool_fraction <= 1.0:
            raise ValueError("pool_fraction must be in (0, 1]")
        self.calibration_corpus = calibration_corpus
        self.guesses = tuple((float(a), float(b)) for a, b in guesses)
        self.pool_fraction = float(pool_fraction)
        self._memo = _PerSubjectMemo()

    def _union_pools(self, model: QuantizedModel) -> Dict[str, np.ndarray]:
        """Per-layer union candidate pools of ``model`` (memoized per subject).

        The pools depend only on the subject's weights, the estimated
        activations and the constructor-fixed guesses — never on the cell
        RNG or the strength — so every subject in a grid pays for activation
        estimation and scoring exactly once, however many strengths sweep it.
        """
        # Imported lazily: core.scoring pulls no extra weight, but
        # models.activations → transformer keeps parity with the other
        # corpus-backed specs which defer their heavy imports.
        from repro.core.scoring import select_candidates
        from repro.models.activations import collect_activation_stats

        def compute() -> Dict[str, np.ndarray]:
            estimated = collect_activation_stats(
                model.materialize(), self.calibration_corpus
            )
            pools = {}
            for layer in model.iter_layers():
                saliency = estimated.channel_saliency(layer.name)
                pool_size = max(1, int(layer.num_weights * self.pool_fraction))
                guessed = [
                    select_candidates(
                        layer, saliency, alpha=alpha, beta=beta, pool_size=pool_size
                    ).candidate_indices
                    for alpha, beta in self.guesses
                ]
                pools[layer.name] = np.unique(np.concatenate(guessed))
            return pools

        return self._memo.get(model, compute)

    def apply(self, model, strength, rng):
        per_layer = int(strength)
        if per_layer < 0:
            raise ValueError("adaptive-overwrite strength must be >= 0")
        attacked = model.clone()
        if per_layer == 0:
            return AttackOutcome(model=attacked)
        union_pools = self._union_pools(model)
        union_fractions = []
        overwritten = 0
        for layer in attacked.iter_layers():
            union = union_pools[layer.name]
            union_fractions.append(union.size / layer.num_weights)
            count = min(per_layer, union.size)
            positions = rng.choice(union, size=count, replace=False)
            current = layer.weight_int.reshape(-1)[positions]
            replacement = rng.integers(
                layer.grid.qmin, layer.grid.qmax + 1, size=count
            )
            layer.add_to_weights(positions, replacement - current)
            overwritten += count
        return AttackOutcome(
            model=attacked,
            info={
                "guesses": [list(guess) for guess in self.guesses],
                "mean_union_pool_fraction": float(np.mean(union_fractions)),
                "positions_overwritten": overwritten,
                "activations_estimated_on_quantized_model": True,
            },
        )

    def describe(self):
        return {
            **super().describe(),
            "guesses": [list(guess) for guess in self.guesses],
            "pool_fraction": self.pool_fraction,
        }


@register_attack
class OracleAdaptiveOverwriteAttack(AttackSpec):
    """The oracle-adaptive attacker: exact (α, β) and pool size, no seed ``d``.

    The strongest published-algorithm adversary short of holding the key: he
    knows the owner's *exact* scoring coefficients and candidate-pool sizing
    (not guesses — e.g. because the owner used the published defaults), so
    the only secrets left are the seed ``d`` and the full-precision
    activations.  He re-derives the candidate pool with activations
    estimated on the quantized model he holds, then overwrites a **pool
    coverage fraction** of it — the strength axis sweeps that fraction from
    0 to 1, charting secrecy vs. the quality the overwrites burn.

    What the residual WER at full coverage measures is the protection of
    ``A_f`` secrecy alone: the estimated pool only partially overlaps the
    owner's true (full-precision-scored) pool, and within the overlap the
    seed still hides which positions carry bits — so pushing the WER down
    keeps requiring pool-scale collateral damage.
    """

    name = "adaptive-oracle"
    strength_unit = "pool-coverage"
    default_strengths = (0.0, 0.25, 0.5, 1.0)
    requires_corpus = True

    def __init__(self, calibration_corpus, owner_config=None) -> None:
        """``owner_config``: the owner's exact :class:`EmMarkConfig` (α, β and
        pool rule are read; the seed is deliberately ignored).  Defaults to
        the published per-model scaling rule, which *is* the owner's
        configuration whenever the owner used the defaults."""
        self.calibration_corpus = calibration_corpus
        self.owner_config = owner_config
        self._memo = _PerSubjectMemo()

    def _exact_pools(self, model: QuantizedModel) -> Dict[str, np.ndarray]:
        """The owner's candidate pool re-derived with estimated activations."""
        from repro.core.config import EmMarkConfig
        from repro.core.scoring import select_candidates
        from repro.models.activations import collect_activation_stats

        def compute() -> Dict[str, np.ndarray]:
            config = self.owner_config or EmMarkConfig.scaled_for_model(model)
            estimated = collect_activation_stats(
                model.materialize(), self.calibration_corpus
            )
            return {
                layer.name: select_candidates(
                    layer,
                    estimated.channel_saliency(layer.name),
                    alpha=config.alpha,
                    beta=config.beta,
                    pool_size=config.candidate_pool_size(layer.num_weights),
                    exclude_saturated=config.exclude_saturated,
                ).candidate_indices
                for layer in model.iter_layers()
            }

        return self._memo.get(model, compute)

    def apply(self, model, strength, rng):
        coverage = float(strength)
        if not 0.0 <= coverage <= 1.0:
            raise ValueError("adaptive-oracle strength must be in [0, 1]")
        attacked = model.clone()
        if coverage == 0.0:
            return AttackOutcome(model=attacked)
        pools = self._exact_pools(model)
        overwritten = 0
        pool_total = 0
        for layer in attacked.iter_layers():
            pool = pools[layer.name]
            pool_total += int(pool.size)
            count = min(int(pool.size), int(round(coverage * pool.size)))
            if count <= 0:
                continue
            positions = rng.choice(pool, size=count, replace=False)
            current = layer.weight_int.reshape(-1)[positions]
            replacement = rng.integers(layer.grid.qmin, layer.grid.qmax + 1, size=count)
            layer.add_to_weights(positions, replacement - current)
            overwritten += count
        return AttackOutcome(
            model=attacked,
            info={
                "pool_coverage": coverage,
                "positions_overwritten": overwritten,
                "estimated_pool_size": pool_total,
                "knows_exact_coefficients": True,
                "knows_pool_size": True,
                "knows_seed": False,
                "activations_estimated_on_quantized_model": True,
            },
        )

    def describe(self):
        described = {**super().describe(), "owner_config_supplied": self.owner_config is not None}
        if self.owner_config is not None:
            described["alpha"] = self.owner_config.alpha
            described["beta"] = self.owner_config.beta
        return described


@register_attack
class SoupAttack(AttackSpec):
    """True two-clone souping: merge two independent custodies of one base.

    Strength = soup ratio ``t`` in [0, 1].  Two owners independently
    watermark the *same* virgin quantized base — the subject handed to the
    gauntlet is owner A's clone; the spec watermarks a second clone of the
    base with partner seeds (drawn from the cell RNG) for owner B.  The
    "attack" merges the clones position-wise in the integer domain: every
    position takes clone B's value with probability ``t`` (``t = 0`` is
    clone A untouched, ``t = 1`` clone B exactly).

    The gauntlet reports **both owners' evidence per cell** — owner A's WER
    (``wer_percent``) and owner B's (``attacker_wer_percent``) — so the
    sweep charts the honest coexistence story: each owner's extraction rate
    tracks the share of the soup drawn from their clone (A ≈ 100·(1−t),
    B ≈ 100·t), both decaying gracefully rather than either vanishing.

    This replaces the earlier fabricated-partner soup (which re-watermarked
    the *deployed* model, so the "partner" inherited A's bits); souping two
    genuinely independent clones of the same base is the scenario the
    ROADMAP's multi-owner fixtures exist for.
    """

    name = "soup"
    strength_unit = "soup-ratio"
    default_strengths = (0.0, 0.5, 1.0)
    requires_base_model = True

    def __init__(
        self,
        base_model: QuantizedModel,
        base_activations,
        partner_bits_per_layer: Optional[int] = None,
    ) -> None:
        self.base_model = base_model
        self.base_activations = base_activations
        self.partner_bits_per_layer = partner_bits_per_layer

    def apply(self, model, strength, rng):
        from repro.core.config import EmMarkConfig
        from repro.core.insertion import insert_watermark

        ratio = float(strength)
        if not 0.0 <= ratio <= 1.0:
            raise ValueError("soup strength must be in [0, 1]")
        if ratio == 0.0:
            return AttackOutcome(model=model.clone())
        if self.base_model.layer_names() != model.layer_names():
            raise ValueError(
                "soup base model does not match the subject's layer layout; "
                "the two clones must share one virgin base"
            )
        partner_config = EmMarkConfig.scaled_for_model(
            self.base_model,
            bits_per_layer=self.partner_bits_per_layer,
            seed=_derived_seed(rng),
            signature_seed=_derived_seed(rng),
        )
        partner, partner_key, _ = insert_watermark(
            self.base_model, self.base_activations, config=partner_config
        )
        souped = model.clone()
        differing = 0
        taken = 0
        for name in souped.layer_names():
            base = souped.layers[name]
            other = partner.layers[name].weight_int
            diff_mask = other != base.weight_int
            take = rng.random(base.weight_int.shape) < ratio
            merged = np.where(take, other, base.weight_int)
            base.weight_int = merged
            differing += int(np.count_nonzero(diff_mask))
            taken += int(np.count_nonzero(diff_mask & take))
        return AttackOutcome(
            model=souped,
            attacker_key=partner_key,
            info={
                "soup_ratio": ratio,
                "true_two_clone": True,
                "positions_differing": differing,
                "positions_taken_from_partner": taken,
            },
        )

    def describe(self):
        return {**super().describe(), "partner_bits_per_layer": self.partner_bits_per_layer}
