"""The robustness gauntlet: parallel (attack × strength × model) sweeps.

Before this subsystem existed, every robustness figure hand-rolled the same
loop — attack the watermarked model at one strength, evaluate quality,
re-extract the owner's watermark, repeat — strictly serially, paying one
location-plan reproduction per sweep point.  :class:`Gauntlet` turns that
into one reusable engine-backed pipeline:

1. **Grid construction** — subjects (a watermarked model + its owner key +
   optionally an evaluation harness) crossed with registered attack specs
   and their strength sweeps produce an ordered list of cells.
2. **Streaming match-and-release execution** (the default) — cells run on a
   configurable worker pool; each worker attacks, measures quality, verifies
   its cell through a shared
   :class:`~repro.engine.engine.FleetVerificationSession` and **drops the
   attacked model immediately**.  Each owner key's location plans are
   reproduced once per run (lazily, on the first cell that needs them), so
   peak memory is O(``max_workers`` × model size) instead of the batched
   stage's O(num_cells × model size) — which is what makes arbitrarily large
   grids feasible.
3. **Batched mode** (``mode="batched"``) — the original two-stage pipeline:
   every cell's attacked model is retained and verified in one
   :meth:`~repro.engine.engine.WatermarkEngine.verify_fleet` sweep.  Kept as
   the reference implementation; its decision digest is bit-identical to the
   streaming path at any worker count (the benchmark gates on it).
4. **Process mode** (``mode="process"``) — cells run in worker *processes*
   over shared-memory model/key residents
   (:mod:`repro.robustness.procpool`): one publication of the subjects into
   a :class:`~repro.engine.shm.SharedArena`, zero-copy read-only views per
   worker, only cell coordinates and verdicts crossing the process
   boundary.  This sidesteps the GIL where attack stages are Python-heavy;
   ``mode="auto"`` picks between serial and process execution based on the
   machine and the grid (see :meth:`Gauntlet._resolve_execution`).

Each cell derives its own RNG from the gauntlet seed and the cell
coordinates, so results are bit-identical at any ``max_workers`` and in
every mode.  The result is a
:class:`~repro.robustness.report.RobustnessReport`.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor, as_completed
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, TextIO, Tuple, Union

from repro.core.keys import WatermarkKey
from repro.engine.engine import WatermarkEngine, get_default_engine
from repro.engine.reports import (
    DEFAULT_MAX_FALSE_CLAIM_PROBABILITY,
    DEFAULT_OWNERSHIP_THRESHOLD,
)
from repro.eval.harness import EvaluationHarness
from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import ProgressRenderer
from repro.obs.trace import get_collector, span
from repro.quant.base import QuantizedModel
from repro.robustness.attacks import AttackSpec
from repro.robustness.checkpoint import CellCheckpoint, grid_fingerprint, merge_completed
from repro.robustness.procpool import START_METHODS, CellTask, ProcessCellExecutor
from repro.robustness.report import GauntletCellResult, RobustnessReport
from repro.utils.logging import get_logger
from repro.utils.rng import new_rng

__all__ = [
    "GauntletCancelled",
    "GauntletConfig",
    "GauntletSubject",
    "Gauntlet",
    "run_gauntlet",
]

logger = get_logger("robustness.gauntlet")

StrengthMap = Mapping[str, Sequence[float]]

#: Execution modes of :meth:`Gauntlet.run`.  ``"auto"`` resolves to serial
#: streaming or process execution per run (machine + grid heuristic).
GAUNTLET_MODES = ("streaming", "batched", "process", "auto")

#: Per-cell completion hook: ``on_cell(result, replayed)`` fires once per
#: grid cell — replayed cells (checkpoint hits) first, in grid order, then
#: fresh cells in completion order.
CellHook = Callable[[GauntletCellResult, bool], None]


class GauntletCancelled(RuntimeError):
    """A gauntlet run stopped cooperatively between cells (``should_stop``).

    Cells completed before the stop are already checkpointed (when a
    checkpoint is attached), so a later run resumes from them instead of
    recomputing.
    """

    def __init__(self, completed: int, total: int) -> None:
        super().__init__(
            f"gauntlet cancelled after {completed}/{total} cells"
        )
        self.completed = completed
        self.total = total


@dataclass(frozen=True)
class GauntletConfig:
    """Tuning knobs of a :class:`Gauntlet`.

    Attributes
    ----------
    max_workers:
        Worker-pool width for cell execution.  ``None`` resolves to the
        ``REPRO_GAUNTLET_WORKERS`` environment variable, falling back to
        ``min(8, cpu_count)``; ``1`` forces serial execution.  Results are
        identical at every setting — the knob only trades wall clock (and,
        in streaming mode, peak memory: at most ``max_workers`` attacked
        models are alive at once).
    seed:
        Root seed of the per-cell attacker RNGs.
    wer_threshold, max_false_claim_probability:
        Ownership-decision thresholds forwarded to the verification stage.
    evaluate_quality:
        Measure perplexity / zero-shot accuracy per cell (needs subjects
        with a harness).  The verification server disables this — it holds
        keys and suspects, not evaluation corpora.
    mode:
        ``"streaming"`` (default) verifies and releases each cell as its
        worker finishes; ``"batched"`` retains every attacked model and runs
        one ``verify_fleet`` sweep; ``"process"`` runs cells in worker
        processes over shared-memory residents (GIL-free attack stages);
        ``"auto"`` falls back to serial streaming on single-core boxes or
        grids smaller than the worker pool, process execution otherwise.
        Decisions are bit-identical in every mode — the resolved choice is
        recorded on the report.
    start_method:
        Multiprocessing start method for ``mode="process"``/``"auto"``
        (``"fork"``, ``"spawn"`` or ``"forkserver"``); ``None`` defers to
        the ``REPRO_GAUNTLET_START_METHOD`` environment variable, then the
        platform default.  Ignored by the in-process modes.
    progress:
        Render a live stderr progress line (cells done/total, cells/sec,
        ETA, per-attack min-WER so far) while the grid executes.  Works in
        every mode; pure I/O — decisions are identical with it on or off.
    """

    max_workers: Optional[int] = None
    seed: int = 0
    wer_threshold: float = DEFAULT_OWNERSHIP_THRESHOLD
    max_false_claim_probability: Optional[float] = DEFAULT_MAX_FALSE_CLAIM_PROBABILITY
    evaluate_quality: bool = True
    mode: str = "streaming"
    start_method: Optional[str] = None
    progress: bool = False

    def __post_init__(self) -> None:
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError("max_workers must be >= 1 (or None for auto)")
        if self.mode not in GAUNTLET_MODES:
            raise ValueError(f"mode must be one of {GAUNTLET_MODES}, got {self.mode!r}")
        if self.start_method is not None and self.start_method not in START_METHODS:
            raise ValueError(
                f"start_method must be one of {START_METHODS} (or None), "
                f"got {self.start_method!r}"
            )

    def resolved_workers(self) -> int:
        """The worker count after applying the environment override."""
        if self.max_workers is not None:
            return self.max_workers
        env = os.environ.get("REPRO_GAUNTLET_WORKERS")
        if env:
            try:
                return max(1, int(env))
            except ValueError:
                logger.warning("ignoring non-integer REPRO_GAUNTLET_WORKERS=%r", env)
        return max(1, min(8, os.cpu_count() or 1))


@dataclass
class GauntletSubject:
    """One watermarked deployment under test.

    Attributes
    ----------
    model:
        The watermarked quantized model (never mutated; attacks clone it).
    key:
        The owner's watermark key for this model.
    harness:
        Evaluation harness measuring the attacked models' quality; optional
        when the gauntlet runs with ``evaluate_quality=False``.
    co_keys:
        Optional co-resident owners' keys (``{owner_id: key}``) for
        multi-owner subjects — models carrying several disjoint watermarks
        (see :meth:`~repro.engine.engine.WatermarkEngine.insert_multi`).
        Every grid cell is verified against each co-resident key as well,
        and the per-owner evidence lands in
        :attr:`~repro.robustness.report.GauntletCellResult.co_owner_wer_percent`,
        so one sweep shows how an attack degrades *every* owner of the
        deployment, not just the primary one.
    """

    model: QuantizedModel
    key: WatermarkKey
    harness: Optional[EvaluationHarness] = None
    co_keys: Optional[Mapping[str, WatermarkKey]] = None


@dataclass
class _Cell:
    """Internal: one grid coordinate."""

    index: int
    model_id: str
    spec: AttackSpec
    strength: float

    @property
    def cell_id(self) -> str:
        return f"{self.model_id}/{self.spec.name}@{self.strength:g}"

    @property
    def attacker_key_id(self) -> str:
        return f"{self.cell_id}#attacker"


def _co_key_id(model_id: str, owner_id: str) -> str:
    """Verification-session id of one co-resident owner's key."""
    return f"{model_id}::{owner_id}"


class Gauntlet:
    """Engine-backed executor of robustness grids.

    Parameters
    ----------
    engine:
        Shared :class:`WatermarkEngine` for the verification stage; the
        process-wide default engine (shared plan cache) when omitted.
    config:
        Gauntlet tuning; defaults to :class:`GauntletConfig` defaults.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` the run's
        sweep-level telemetry (cells executed, cells/sec, worker
        utilization) is recorded into — the server passes its own so
        gauntlet runs show up on ``GET /metrics``.
    progress_stream:
        Override of the progress line's target stream (tests); ``None``
        means stderr.
    """

    def __init__(
        self,
        engine: Optional[WatermarkEngine] = None,
        config: Optional[GauntletConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        progress_stream: Optional[TextIO] = None,
    ) -> None:
        self._engine = engine
        self.config = config if config is not None else GauntletConfig()
        self.metrics = metrics
        self.progress_stream = progress_stream

    @property
    def engine(self) -> WatermarkEngine:
        """The engine the verification stage runs on."""
        return self._engine if self._engine is not None else get_default_engine()

    # ------------------------------------------------------------------
    # Grid construction
    # ------------------------------------------------------------------
    @staticmethod
    def _named_subjects(
        subjects: Union[GauntletSubject, Mapping[str, GauntletSubject]],
    ) -> List[Tuple[str, GauntletSubject]]:
        if isinstance(subjects, GauntletSubject):
            return [("subject-0", subjects)]
        if not subjects:
            raise ValueError("gauntlet needs at least one subject")
        return list(subjects.items())

    def _build_grid(
        self,
        subjects: List[Tuple[str, GauntletSubject]],
        attacks: Sequence[AttackSpec],
        strengths: Optional[StrengthMap],
    ) -> List[_Cell]:
        if not attacks:
            raise ValueError("gauntlet needs at least one attack spec")
        names = [spec.name for spec in attacks]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate attack specs in the grid: {names}")
        if strengths:
            unknown = set(strengths) - set(names)
            if unknown:
                raise ValueError(
                    f"strengths given for attacks not in the grid: {sorted(unknown)}"
                )
        cells: List[_Cell] = []
        for model_id, _subject in subjects:
            for spec in attacks:
                sweep = (strengths or {}).get(spec.name, spec.default_strengths)
                if not sweep:
                    raise ValueError(
                        f"attack {spec.name!r} has no strengths (and no defaults)"
                    )
                for strength in sweep:
                    cells.append(
                        _Cell(
                            index=len(cells),
                            model_id=model_id,
                            spec=spec,
                            strength=float(strength),
                        )
                    )
        # Cell ids are the suspect ids of the verification stage; a collision
        # (duplicate strengths, or strengths differing only past the %g
        # rendering) would silently hand one cell the other's verdict, so it
        # is an error instead.
        seen_ids: Dict[str, float] = {}
        for cell in cells:
            if cell.cell_id in seen_ids:
                raise ValueError(
                    f"grid cells collide on id {cell.cell_id!r} (strengths "
                    f"{seen_ids[cell.cell_id]!r} and {cell.strength!r}); "
                    "deduplicate the strength sweep"
                )
            seen_ids[cell.cell_id] = cell.strength
        return cells

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def grid_fingerprint_for(
        self,
        subjects: Union[GauntletSubject, Mapping[str, GauntletSubject]],
        attacks: Sequence[AttackSpec],
        strengths: Optional[StrengthMap] = None,
        extra: Optional[Mapping[str, object]] = None,
    ) -> str:
        """Checkpoint identity of the grid this gauntlet would run.

        Folds in everything the decision digest depends on — subjects,
        (attack → strengths), seed, thresholds, ``evaluate_quality`` — so a
        checkpoint written under one fingerprint can never replay into a
        grid that would have decided differently.  ``extra`` binds
        caller-side identity (e.g. the server's suspect content id).
        """
        subject_items = self._named_subjects(subjects)
        resolved = {
            spec.name: tuple(
                float(s)
                for s in (strengths or {}).get(spec.name, spec.default_strengths)
            )
            for spec in attacks
        }
        return grid_fingerprint(
            [model_id for model_id, _subject in subject_items],
            resolved,
            seed=self.config.seed,
            wer_threshold=self.config.wer_threshold,
            max_false_claim_probability=self.config.max_false_claim_probability,
            evaluate_quality=self.config.evaluate_quality,
            extra=extra,
        )

    def run(
        self,
        subjects: Union[GauntletSubject, Mapping[str, GauntletSubject]],
        attacks: Sequence[AttackSpec],
        strengths: Optional[StrengthMap] = None,
        checkpoint: Optional[Union[str, Path, CellCheckpoint]] = None,
        on_cell: Optional[CellHook] = None,
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> RobustnessReport:
        """Execute the (attack × strength × subject) grid.

        Parameters
        ----------
        subjects:
            One :class:`GauntletSubject` or a mapping of explicit ids.
        attacks:
            Attack specs forming the grid's attack axis (see
            :mod:`repro.robustness.attacks`).
        strengths:
            Optional per-attack strength sweeps, keyed by attack name;
            attacks not listed use their ``default_strengths``.
        checkpoint:
            Append-only JSONL checkpoint of completed cells.  A path (the
            CLI's ``--checkpoint``/``--resume``) is opened against this
            grid's :meth:`grid_fingerprint_for`; a ready-made
            :class:`~repro.robustness.checkpoint.CellCheckpoint` (the job
            manager's content-addressed files) is used as given.  Cells
            already on disk are **replayed instead of recomputed**, and the
            resumed report's decision digest is bit-identical to an
            uninterrupted run (JSON-exact fields + grid-order reassembly).
        on_cell:
            Per-cell completion hook ``on_cell(result, replayed)`` — the
            server's job event stream hangs off it.  Replayed cells fire
            first (grid order, ``replayed=True``), fresh cells as they
            finish (completion order).  Pure observer: results are identical
            with it attached or not.
        should_stop:
            Cooperative cancellation probe, checked between cells; when it
            returns True the run raises :class:`GauntletCancelled`.
            Completed cells are already checkpointed, so a cancelled sweep
            resumes instead of restarting.

        Returns
        -------
        RobustnessReport
            Grid-major cell results plus sweep-level wall-clock and
            plan-cache figures.  Decision fields are identical for any
            worker count and either execution mode.
        """
        wall_start = time.perf_counter()
        subject_items = self._named_subjects(subjects)
        subject_for = dict(subject_items)
        cells = self._build_grid(subject_items, attacks, strengths)
        workers = self.config.resolved_workers()

        if self.config.evaluate_quality:
            missing = [
                model_id
                for model_id, subject in subject_items
                if subject.harness is None
            ]
            if missing:
                raise ValueError(
                    f"evaluate_quality=True but subjects {missing[:4]} have no harness; "
                    "attach one or run with evaluate_quality=False"
                )

        ckpt: Optional[CellCheckpoint] = None
        if isinstance(checkpoint, CellCheckpoint):
            ckpt = checkpoint
        elif checkpoint is not None:
            ckpt = CellCheckpoint(
                checkpoint,
                fingerprint=self.grid_fingerprint_for(subjects, attacks, strengths),
            )
        completed = ckpt.load() if ckpt is not None else {}
        pending = [cell for cell in cells if cell.cell_id not in completed]
        replayed_results = [
            completed[cell.cell_id] for cell in cells if cell.cell_id in completed
        ]
        if replayed_results:
            logger.info(
                "checkpoint replay: %d/%d cells from %s",
                len(replayed_results),
                len(cells),
                ckpt.path,
            )

        def emit(result: GauntletCellResult) -> None:
            # Fresh-cell completion: persist first (fsync-batched), then
            # notify — a crash between the two re-runs the hook on resume
            # rather than losing the cell.
            if ckpt is not None:
                ckpt.append(result)
            if on_cell is not None:
                on_cell(result, False)

        mode, workers = self._resolve_execution(len(pending), workers)
        renderer: Optional[ProgressRenderer] = None
        if self.config.progress and cells:
            renderer = ProgressRenderer(len(cells), stream=self.progress_stream)
            renderer.start()
        try:
            for result in replayed_results:
                if on_cell is not None:
                    on_cell(result, True)
                if renderer is not None:
                    renderer.update(result.attack, result.wer_percent)
            with span(
                "gauntlet.run",
                cells=len(cells),
                pending=len(pending),
                mode=mode,
                workers=workers,
            ):
                if not pending:
                    report = RobustnessReport(
                        cells=[],
                        seed=self.config.seed,
                        workers=workers,
                        wall_clock_seconds=time.perf_counter() - wall_start,
                        mode="streaming" if mode == "auto" else mode,
                    )
                elif mode == "batched":
                    report = self._run_batched(
                        subject_items, subject_for, pending, workers, wall_start,
                        renderer, emit, should_stop,
                    )
                elif mode == "process":
                    report = self._run_process(
                        subject_items, subject_for, pending, workers, wall_start,
                        renderer, emit, should_stop,
                    )
                else:
                    report = self._run_streaming(
                        subject_items, subject_for, pending, workers, wall_start,
                        renderer, emit, should_stop,
                    )
        finally:
            if renderer is not None:
                renderer.finish()
            if ckpt is not None:
                ckpt.close()
        if mode != "process":
            # The in-process modes execute cells serially below the
            # parallelism threshold and on a thread pool above it; record
            # which one actually happened (informational — never digested).
            report.executor = (
                "serial" if (workers <= 1 or len(pending) < 2) else "thread"
            )
        # Reassemble in grid order: replayed cells slot back into the
        # positions they were originally computed in, so the resumed digest
        # equals the uninterrupted one byte for byte.
        fresh_by_id = {cell.cell_id: cell for cell in report.cells}
        report.cells, _num_replayed = merge_completed(
            [cell.cell_id for cell in cells], completed, fresh_by_id
        )
        self._record_metrics(report)
        logger.debug("%s", report.summary())
        return report

    def _record_metrics(self, report: RobustnessReport) -> None:
        """Publish sweep-level telemetry into the attached registry (if any)."""
        if self.metrics is None:
            return
        self.metrics.counter(
            "repro_gauntlet_cells_total", "Gauntlet cells executed"
        ).inc(report.num_cells)
        self.metrics.gauge(
            "repro_gauntlet_cells_per_second", "Throughput of the last sweep"
        ).set(report.cells_per_second)
        self.metrics.histogram(
            "repro_gauntlet_cell_verify_seconds", "Per-sweep summed verification time"
        ).observe(report.verify_seconds)
        for pid, utilization in report.worker_utilization.items():
            self.metrics.gauge(
                "repro_gauntlet_worker_utilization",
                "Busy fraction per process-pool worker (last sweep)",
                labels={"pid": pid},
            ).set(utilization)

    def _resolve_execution(self, num_cells: int, workers: int) -> Tuple[str, int]:
        """Resolve ``mode="auto"`` into a concrete (mode, workers) choice.

        The heuristic attacks the measured thread-mode regression head-on:
        parallelism costs real money up front (pool spin-up, and for the
        process mode a model publication + per-worker attach), so it must
        not be bought where it cannot pay off —

        * a single-core box cannot run two cells at once in any executor, and
        * a grid with fewer cells than workers leaves most of the pool idle
          while still paying its startup,

        so both cases run serially (streaming pipeline, one worker).  Every
        other machine/grid combination takes the process executor — the only
        one whose attack stages escape the GIL.  Explicit modes are returned
        unchanged; the resolved choice lands in ``RobustnessReport.mode``.
        """
        if self.config.mode != "auto":
            return self.config.mode, workers
        if (os.cpu_count() or 1) <= 1 or num_cells < workers:
            return "streaming", 1
        return "process", workers

    def _cell_rng(self, cell: _Cell):
        # The RNG depends only on (seed, coordinates) — never on which worker
        # picks the cell up or which mode runs it — so grids are reproducible
        # at any pool width.
        return new_rng(
            self.config.seed,
            "gauntlet",
            cell.model_id,
            cell.spec.name,
            f"{cell.strength:g}",
        )

    @staticmethod
    def _cell_result(cell, owner, attacker, quality, attack_seconds, info, co=None):
        """One cell's report row.

        Shared by both execution modes — being identical by construction is
        part of the streaming ≡ batched decision guarantee.  ``co`` carries
        the co-resident owners' :class:`PairVerification`\\ s for multi-owner
        subjects.
        """
        return GauntletCellResult(
            model_id=cell.model_id,
            attack=cell.spec.name,
            strength=cell.strength,
            strength_unit=cell.spec.strength_unit,
            wer_percent=owner.wer_percent,
            matched_bits=owner.matched_bits,
            total_bits=owner.total_bits,
            false_claim_probability=owner.false_claim_probability,
            owned=owner.owned,
            attacker_wer_percent=None if attacker is None else attacker.wer_percent,
            perplexity=None if quality is None else quality.perplexity,
            zero_shot_accuracy=None if quality is None else quality.zero_shot_accuracy,
            attack_seconds=attack_seconds,
            info=dict(info),
            co_owner_wer_percent={oid: pair.wer_percent for oid, pair in (co or {}).items()},
            co_owner_owned={oid: pair.owned for oid, pair in (co or {}).items()},
        )

    # ------------------------------------------------------------------
    # Streaming mode (default): verify-and-release per cell
    # ------------------------------------------------------------------
    def _run_streaming(
        self,
        subject_items: List[Tuple[str, GauntletSubject]],
        subject_for: Dict[str, GauntletSubject],
        cells: List[_Cell],
        workers: int,
        wall_start: float,
        renderer: Optional[ProgressRenderer] = None,
        emit: Optional[Callable[[GauntletCellResult], None]] = None,
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> RobustnessReport:
        session_keys = {model_id: subject.key for model_id, subject in subject_items}
        for model_id, subject in subject_items:
            for owner_id, co_key in (subject.co_keys or {}).items():
                session_keys[_co_key_id(model_id, owner_id)] = co_key
        session = self.engine.verification_session(
            keys=session_keys,
            wer_threshold=self.config.wer_threshold,
            max_false_claim_probability=self.config.max_false_claim_probability,
        )

        def run_cell(cell: _Cell) -> Tuple[GauntletCellResult, float]:
            subject = subject_for[cell.model_id]
            rng = self._cell_rng(cell)
            with span(
                "gauntlet.cell",
                cell=cell.cell_id,
                attack=cell.spec.name,
                strength=cell.strength,
            ):
                start = time.perf_counter()
                outcome = cell.spec.apply(subject.model, cell.strength, rng)
                quality = (
                    subject.harness.evaluate(outcome.model)
                    if self.config.evaluate_quality
                    else None
                )
                attack_seconds = time.perf_counter() - start
                verify_start = time.perf_counter()
                owner = session.verify(cell.cell_id, outcome.model, cell.model_id)
                co = {
                    owner_id: session.verify(
                        cell.cell_id, outcome.model, _co_key_id(cell.model_id, owner_id)
                    )
                    for owner_id in (subject.co_keys or {})
                }
                attacker = None
                if outcome.attacker_key is not None:
                    # One-shot: the adversary key belongs to this cell alone, so
                    # it is verified without session registration — retaining it
                    # (a full model-size reference snapshot per cell) would quietly
                    # re-grow the O(grid) memory the streaming mode removes.
                    attacker = session.verify_once(
                        cell.cell_id, outcome.model, outcome.attacker_key,
                        cell.attacker_key_id,
                    )
                verify_seconds = time.perf_counter() - verify_start
            result = self._cell_result(
                cell, owner, attacker, quality, attack_seconds, outcome.info, co=co
            )
            # ``outcome`` — and with it the attacked model — dies with this
            # frame: nothing past this point references it, which is the
            # O(workers × model size) peak-memory guarantee.
            return result, verify_seconds

        if workers <= 1 or len(cells) < 2:
            outputs = []
            for position, cell in enumerate(cells):
                if should_stop is not None and should_stop():
                    raise GauntletCancelled(position, len(cells))
                output = run_cell(cell)
                outputs.append(output)
                if emit is not None:
                    emit(output[0])
                if renderer is not None:
                    renderer.update(cell.spec.name, output[0].wer_percent)
        else:
            # A private pool: the engine's layer-level pool stays free for
            # location reproduction (and for attacks that insert watermarks
            # through an engine, e.g. re-watermarking).  Completion-order
            # consumption feeds the progress line; outputs are reassembled
            # in grid order, so results never depend on finish order.
            def run_cell_cooperative(cell: _Cell) -> Tuple[GauntletCellResult, float]:
                # Cancellation is between-cells: a worker picking up its next
                # cell after the stop flag rose raises instead of attacking.
                if should_stop is not None and should_stop():
                    raise GauntletCancelled(0, len(cells))
                return run_cell(cell)

            with ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="gauntlet"
            ) as pool:
                future_for = {
                    pool.submit(run_cell_cooperative, cell): cell for cell in cells
                }
                slots: List[Optional[Tuple[GauntletCellResult, float]]] = (
                    [None] * len(cells)
                )
                position = {cell.index: i for i, cell in enumerate(cells)}
                cancelled = False
                for future in as_completed(future_for):
                    cell = future_for[future]
                    try:
                        output = future.result()
                    except GauntletCancelled:
                        # Keep draining: cells that did complete are still
                        # emitted (and checkpointed) below, so nothing
                        # finished is lost to the cancellation.
                        cancelled = True
                        continue
                    slots[position[cell.index]] = output
                    if emit is not None:
                        emit(output[0])
                    if renderer is not None:
                        renderer.update(cell.spec.name, output[0].wer_percent)
                outputs = [output for output in slots if output is not None]
                if cancelled:
                    raise GauntletCancelled(len(outputs), len(cells))

        traffic = session.cache_traffic()
        return RobustnessReport(
            cells=[result for result, _ in outputs],
            seed=self.config.seed,
            workers=workers,
            wall_clock_seconds=time.perf_counter() - wall_start,
            # Summed per-cell verification time: the verification work is
            # interleaved with the attacks, so there is no contiguous
            # "verification stage" wall-clock span to report.
            verify_seconds=sum(seconds for _, seconds in outputs),
            cache_hits=traffic.hits,
            cache_misses=traffic.misses,
            mode="streaming",
        )

    # ------------------------------------------------------------------
    # Process mode: worker processes over shared-memory residents
    # ------------------------------------------------------------------
    def _run_process(
        self,
        subject_items: List[Tuple[str, GauntletSubject]],
        subject_for: Dict[str, GauntletSubject],
        cells: List[_Cell],
        workers: int,
        wall_start: float,
        renderer: Optional[ProgressRenderer] = None,
        emit: Optional[Callable[[GauntletCellResult], None]] = None,
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> RobustnessReport:
        stats_before = self.engine.cache.stats()
        models = {model_id: subject.model for model_id, subject in subject_items}
        keys = {model_id: subject.key for model_id, subject in subject_items}
        co_key_ids: Dict[str, Tuple[Tuple[str, str], ...]] = {}
        for model_id, subject in subject_items:
            wired = []
            for owner_id, co_key in (subject.co_keys or {}).items():
                key_id = _co_key_id(model_id, owner_id)
                keys[key_id] = co_key
                wired.append((owner_id, key_id))
            if wired:
                co_key_ids[model_id] = tuple(wired)
        # The parent reproduces every registered key's locations exactly once
        # (served from the plan cache when warm); workers consume the small
        # index arrays verbatim instead of re-running the scoring pass —
        # bit-identical by purity of location reproduction.
        key_locations = {
            key_id: self.engine.reproduce_locations(key) for key_id, key in keys.items()
        }
        attacks = {cell.spec.name: cell.spec for cell in cells}
        harnesses = {
            model_id: subject.harness
            for model_id, subject in subject_items
            if subject.harness is not None
        }
        tasks = [
            CellTask(
                index=cell.index,
                model_id=cell.model_id,
                attack_name=cell.spec.name,
                strength=cell.strength,
            )
            for cell in cells
        ]
        collector = get_collector()
        executor = ProcessCellExecutor(
            models=models,
            keys=keys,
            key_locations=key_locations,
            co_key_ids=co_key_ids,
            attacks=attacks,
            harnesses=harnesses,
            evaluate_quality=self.config.evaluate_quality,
            seed=self.config.seed,
            wer_threshold=self.config.wer_threshold,
            max_false_claim_probability=self.config.max_false_claim_probability,
            workers=workers,
            start_method=self.config.start_method,
            trace=collector is not None,
        )
        cell_for = {cell.index: cell for cell in cells}
        on_complete = None
        if renderer is not None or collector is not None or emit is not None:
            def on_complete(outcome):
                # Parent-side completion hook: merge worker spans into the
                # collector, feed the progress line, and emit the cell result
                # (checkpoint append + job events).  Outcome ordering is the
                # executor's job; nothing here touches the returned results.
                if collector is not None and outcome.spans:
                    collector.extend(outcome.spans)
                if emit is not None:
                    emit(
                        self._cell_result(
                            cell_for[outcome.index],
                            outcome.owner,
                            outcome.attacker,
                            outcome.quality,
                            outcome.attack_seconds,
                            outcome.info,
                            co=outcome.co,
                        )
                    )
                if renderer is not None:
                    renderer.update(
                        cell_for[outcome.index].spec.name, outcome.owner.wer_percent
                    )
        with executor:
            outcomes = executor.run(tasks, on_complete=on_complete, should_stop=should_stop)
        if should_stop is not None and should_stop():
            raise GauntletCancelled(len(outcomes), len(cells))
        results = [
            self._cell_result(
                cell,
                outcome.owner,
                outcome.attacker,
                outcome.quality,
                outcome.attack_seconds,
                outcome.info,
                co=outcome.co,
            )
            for cell, outcome in zip(cells, outcomes)
        ]
        traffic = self.engine.cache.stats().delta(stats_before)
        wall_clock = time.perf_counter() - wall_start
        # Worker utilization: busy (attack + verify) seconds per worker pid
        # over the sweep's wall clock — the "were my cores actually fed?"
        # number for a 10k-cell run.
        busy: Dict[str, float] = {}
        for outcome in outcomes:
            pid = str(outcome.worker_pid or "unknown")
            busy[pid] = busy.get(pid, 0.0) + outcome.attack_seconds + outcome.verify_seconds
        utilization = (
            {pid: seconds / wall_clock for pid, seconds in sorted(busy.items())}
            if wall_clock > 0
            else {}
        )
        return RobustnessReport(
            cells=results,
            seed=self.config.seed,
            workers=workers,
            wall_clock_seconds=wall_clock,
            verify_seconds=sum(outcome.verify_seconds for outcome in outcomes),
            # Parent-side traffic only (the location reproduction above);
            # per-worker plan caches are private by design and not aggregated.
            cache_hits=traffic.hits,
            cache_misses=traffic.misses,
            mode="process",
            executor="process",
            start_method=executor.start_method,
            worker_utilization=utilization,
        )

    # ------------------------------------------------------------------
    # Batched mode: the original two-stage reference pipeline
    # ------------------------------------------------------------------
    def _run_batched(
        self,
        subject_items: List[Tuple[str, GauntletSubject]],
        subject_for: Dict[str, GauntletSubject],
        cells: List[_Cell],
        workers: int,
        wall_start: float,
        renderer: Optional[ProgressRenderer] = None,
        emit: Optional[Callable[[GauntletCellResult], None]] = None,
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> RobustnessReport:
        # -- stage 1: attack + quality, cell-parallel ----------------------
        def run_cell(cell: _Cell):
            # Batched cells only become results after the fleet sweep, so
            # cancellation aborts the whole stage (nothing checkpointable
            # exists yet) — the streaming/process modes are the
            # checkpoint-friendly executors.
            if should_stop is not None and should_stop():
                raise GauntletCancelled(0, len(cells))
            subject = subject_for[cell.model_id]
            rng = self._cell_rng(cell)
            with span(
                "gauntlet.cell",
                cell=cell.cell_id,
                attack=cell.spec.name,
                strength=cell.strength,
            ):
                start = time.perf_counter()
                outcome = cell.spec.apply(subject.model, cell.strength, rng)
                quality = (
                    subject.harness.evaluate(outcome.model)
                    if self.config.evaluate_quality
                    else None
                )
            elapsed = time.perf_counter() - start
            # Progress counts attacked cells; WERs only exist after the
            # batched verify_fleet sweep, so the line shows counts/ETA only.
            if renderer is not None:
                renderer.update()
            return outcome, quality, elapsed

        if workers <= 1 or len(cells) < 2:
            staged = [run_cell(cell) for cell in cells]
        else:
            with ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="gauntlet"
            ) as pool:
                staged = list(pool.map(run_cell, cells))

        # -- stage 2: one batched verify_fleet sweep -----------------------
        # Every attacked model is alive simultaneously here — the
        # O(num_cells × model size) peak the streaming mode removes.
        verify_start = time.perf_counter()
        suspects: Dict[str, QuantizedModel] = {}
        keys: Dict[str, WatermarkKey] = {
            model_id: subject.key for model_id, subject in subject_items
        }
        for model_id, subject in subject_items:
            for owner_id, co_key in (subject.co_keys or {}).items():
                keys[_co_key_id(model_id, owner_id)] = co_key
        pairs: List[Tuple[str, str]] = []
        for cell, (outcome, _quality, _seconds) in zip(cells, staged):
            suspects[cell.cell_id] = outcome.model
            pairs.append((cell.cell_id, cell.model_id))
            for owner_id in (subject_for[cell.model_id].co_keys or {}):
                pairs.append((cell.cell_id, _co_key_id(cell.model_id, owner_id)))
            if outcome.attacker_key is not None:
                keys[cell.attacker_key_id] = outcome.attacker_key
                pairs.append((cell.cell_id, cell.attacker_key_id))
        fleet = self.engine.verify_fleet(
            suspects,
            keys,
            wer_threshold=self.config.wer_threshold,
            max_false_claim_probability=self.config.max_false_claim_probability,
            pairs=pairs,
        )
        verify_seconds = time.perf_counter() - verify_start
        by_pair = {(pair.suspect_id, pair.key_id): pair for pair in fleet.pairs}

        # -- stage 3: assemble the report ----------------------------------
        results: List[GauntletCellResult] = []
        for cell, (outcome, quality, attack_seconds) in zip(cells, staged):
            owner = by_pair[(cell.cell_id, cell.model_id)]
            attacker = by_pair.get((cell.cell_id, cell.attacker_key_id))
            co = {
                owner_id: by_pair[(cell.cell_id, _co_key_id(cell.model_id, owner_id))]
                for owner_id in (subject_for[cell.model_id].co_keys or {})
            }
            result = self._cell_result(
                cell, owner, attacker, quality, attack_seconds, outcome.info, co=co
            )
            if emit is not None:
                emit(result)
            results.append(result)
        return RobustnessReport(
            cells=results,
            seed=self.config.seed,
            workers=workers,
            wall_clock_seconds=time.perf_counter() - wall_start,
            verify_seconds=verify_seconds,
            cache_hits=fleet.cache_hits,
            cache_misses=fleet.cache_misses,
            mode="batched",
        )


def run_gauntlet(
    subjects: Union[GauntletSubject, Mapping[str, GauntletSubject]],
    attacks: Sequence[AttackSpec],
    strengths: Optional[StrengthMap] = None,
    engine: Optional[WatermarkEngine] = None,
    checkpoint: Optional[Union[str, Path, CellCheckpoint]] = None,
    on_cell: Optional[CellHook] = None,
    should_stop: Optional[Callable[[], bool]] = None,
    **config_kwargs,
) -> RobustnessReport:
    """One-call convenience: build a :class:`Gauntlet` and run the grid."""
    return Gauntlet(engine=engine, config=GauntletConfig(**config_kwargs)).run(
        subjects,
        attacks,
        strengths,
        checkpoint=checkpoint,
        on_cell=on_cell,
        should_stop=should_stop,
    )
