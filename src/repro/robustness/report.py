"""Aggregated results of a robustness gauntlet run.

A gauntlet executes an (attack × strength × model) grid; every cell yields
the attacked model's ownership evidence (WER, matched bits, Equation 8
probability, verdict), optionally its quality (perplexity, zero-shot
accuracy) and, for re-watermarking cells, the adversary's own extraction
rate.  :class:`RobustnessReport` collects the cells and answers the
questions Figures 2a/2b/3 ask of them:

* :meth:`RobustnessReport.min_wer_by_attack` — the watermark's worst case
  under each attack (the paper's ">99% under overwriting" style claims),
* :meth:`RobustnessReport.frontier` — the quality-vs-WER frontier: how much
  model quality an adversary must burn to push the WER down,
* :meth:`RobustnessReport.to_table` / :meth:`to_dict` — rendering for humans
  and machines (CLI, benchmarks, the ``/robustness`` endpoint).

Decision fields are deterministic for a fixed (subjects, attacks,
strengths, seed) grid regardless of the gauntlet's worker count;
:meth:`RobustnessReport.decision_digest` condenses them into one hash so
equivalence gates are a string comparison.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.utils.tables import Table, format_float

__all__ = ["GauntletCellResult", "RobustnessReport"]


@dataclass
class GauntletCellResult:
    """One (model, attack, strength) cell of the gauntlet grid.

    Quality fields are ``None`` when the gauntlet ran without an evaluation
    harness (e.g. on the verification server, which holds no dataset);
    ``attacker_wer_percent`` is ``None`` unless the attack inserted its own
    watermark.
    """

    model_id: str
    attack: str
    strength: float
    #: Display label for the strength axis; the strength *value* is digested
    #: via ``cell_id``.
    strength_unit: str = field(metadata={"informational": True})
    wer_percent: float
    matched_bits: int
    total_bits: int
    #: Equation 8, fully determined by the digested ``matched_bits`` /
    #: ``total_bits`` pair — re-digesting the float would only pin its
    #: formatting.
    false_claim_probability: float = field(metadata={"informational": True})
    owned: bool
    attacker_wer_percent: Optional[float] = None
    perplexity: Optional[float] = None
    zero_shot_accuracy: Optional[float] = None
    #: Wall-clock timing — varies run to run by construction.
    attack_seconds: float = field(default=0.0, metadata={"informational": True})
    #: Free-form attack annotations (worker ids, trace spans, ...).
    info: Dict[str, object] = field(
        default_factory=dict, metadata={"informational": True}
    )
    #: Per-co-resident-owner evidence for multi-owner subjects (``co_keys``
    #: on the :class:`~repro.robustness.gauntlet.GauntletSubject`); empty for
    #: single-owner grids.
    co_owner_wer_percent: Dict[str, float] = field(default_factory=dict)
    co_owner_owned: Dict[str, bool] = field(default_factory=dict)

    @property
    def cell_id(self) -> str:
        """Stable identifier of the cell inside its grid."""
        return f"{self.model_id}/{self.attack}@{self.strength:g}"

    def decision_fields(self) -> Tuple:
        """The worker-count-invariant fields (used for equivalence gates)."""
        fields = (
            self.cell_id,
            self.wer_percent,
            self.matched_bits,
            self.total_bits,
            self.owned,
            self.attacker_wer_percent,
            self.perplexity,
            self.zero_shot_accuracy,
        )
        if self.co_owner_wer_percent:
            # Appended only for multi-owner cells so single-owner digests —
            # which the versioned benchmark gates pin — stay unchanged.
            fields += (
                tuple(sorted(self.co_owner_wer_percent.items())),
                tuple(sorted(self.co_owner_owned.items())),
            )
        return fields

    @classmethod
    def from_dict(cls, payload: dict) -> "GauntletCellResult":
        """Rebuild a cell from its :meth:`to_dict` form (checkpoint replay).

        Inverse of :meth:`to_dict` for every decision field: floats, ints,
        bools and ``None`` round-trip exactly through JSON, so a replayed
        cell's :meth:`decision_fields` — and with them the report's
        :meth:`~RobustnessReport.decision_digest` — are bit-identical to the
        originals.
        """
        return cls(
            model_id=str(payload["model_id"]),
            attack=str(payload["attack"]),
            strength=float(payload["strength"]),
            strength_unit=str(payload.get("strength_unit", "")),
            wer_percent=float(payload["wer_percent"]),
            matched_bits=int(payload["matched_bits"]),
            total_bits=int(payload["total_bits"]),
            false_claim_probability=float(payload.get("false_claim_probability", 0.0)),
            owned=bool(payload["owned"]),
            attacker_wer_percent=(
                None
                if payload.get("attacker_wer_percent") is None
                else float(payload["attacker_wer_percent"])
            ),
            perplexity=(
                None
                if payload.get("perplexity") is None
                else float(payload["perplexity"])
            ),
            zero_shot_accuracy=(
                None
                if payload.get("zero_shot_accuracy") is None
                else float(payload["zero_shot_accuracy"])
            ),
            attack_seconds=float(payload.get("attack_seconds", 0.0)),
            info=dict(payload.get("info") or {}),
            co_owner_wer_percent={
                str(owner): float(wer)
                for owner, wer in (payload.get("co_owner_wer_percent") or {}).items()
            },
            co_owner_owned={
                str(owner): bool(owned)
                for owner, owned in (payload.get("co_owner_owned") or {}).items()
            },
        )

    def to_dict(self) -> dict:
        """JSON-able form of the cell."""
        return {
            "model_id": self.model_id,
            "attack": self.attack,
            "strength": self.strength,
            "strength_unit": self.strength_unit,
            "wer_percent": self.wer_percent,
            "matched_bits": self.matched_bits,
            "total_bits": self.total_bits,
            "false_claim_probability": self.false_claim_probability,
            "owned": self.owned,
            "attacker_wer_percent": self.attacker_wer_percent,
            "perplexity": self.perplexity,
            "zero_shot_accuracy": self.zero_shot_accuracy,
            "attack_seconds": self.attack_seconds,
            "info": self.info,
            "co_owner_wer_percent": dict(self.co_owner_wer_percent),
            "co_owner_owned": dict(self.co_owner_owned),
        }


@dataclass
class RobustnessReport:
    """Structured result of one :class:`~repro.robustness.gauntlet.Gauntlet` run.

    ``cells`` are ordered grid-major (subjects, then attacks, then
    strengths, exactly as submitted), independent of which worker finished
    first.
    """

    cells: List[GauntletCellResult] = field(default_factory=list)
    seed: int = 0
    workers: int = 1
    wall_clock_seconds: float = 0.0
    verify_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    #: Execution mode that produced the report ("streaming", "batched" or
    #: "process"; an "auto" request records what it resolved to).
    #: Informational only — decision fields and the digest are mode-invariant.
    mode: str = "streaming"
    #: How cells were actually executed: "serial", "thread" or "process".
    #: Distinguishes the two faces of the streaming pipeline (one worker vs
    #: a thread pool).  Informational only, like ``mode``.
    executor: str = "serial"
    #: Multiprocessing start method of a process-mode run ("fork"/"spawn"/
    #: "forkserver"); ``None`` for the in-process executors.
    start_method: Optional[str] = None
    #: Busy fraction per worker process (``{pid: busy_seconds / wall}``) of a
    #: process-mode run; empty for the in-process executors.  Informational
    #: telemetry, like ``mode`` — never part of :meth:`decision_digest`.
    worker_utilization: Dict[str, float] = field(default_factory=dict)

    @property
    def cells_per_second(self) -> float:
        """Sweep throughput (informational; 0.0 when wall clock is unknown)."""
        if self.wall_clock_seconds <= 0:
            return 0.0
        return self.num_cells / self.wall_clock_seconds

    # -- structure ---------------------------------------------------------
    @property
    def num_cells(self) -> int:
        """Number of grid cells executed."""
        return len(self.cells)

    def attacks(self) -> List[str]:
        """Attack names present in the grid, in first-seen order."""
        seen: List[str] = []
        for cell in self.cells:
            if cell.attack not in seen:
                seen.append(cell.attack)
        return seen

    def model_ids(self) -> List[str]:
        """Subject ids present in the grid, in first-seen order."""
        seen: List[str] = []
        for cell in self.cells:
            if cell.model_id not in seen:
                seen.append(cell.model_id)
        return seen

    def cells_for(
        self, attack: Optional[str] = None, model_id: Optional[str] = None
    ) -> List[GauntletCellResult]:
        """Cells filtered by attack and/or subject."""
        return [
            cell
            for cell in self.cells
            if (attack is None or cell.attack == attack)
            and (model_id is None or cell.model_id == model_id)
        ]

    # -- the robustness questions -----------------------------------------
    def min_wer_by_attack(self) -> Dict[str, float]:
        """Lowest owner WER observed under each attack (worst case)."""
        result: Dict[str, float] = {}
        for cell in self.cells:
            current = result.get(cell.attack)
            if current is None or cell.wer_percent < current:
                result[cell.attack] = cell.wer_percent
        return result

    def min_wer_by_owner(self, model_id: Optional[str] = None) -> Dict[str, float]:
        """Lowest WER per owner across a multi-owner grid (worst case).

        The primary key reports under the owner id ``"<primary>"``;
        co-resident owners report under their ``co_keys`` ids.  Empty
        co-resident maps make this the single-entry primary summary.
        """
        result: Dict[str, float] = {}
        for cell in self.cells_for(model_id=model_id):
            for owner, wer in [("<primary>", cell.wer_percent), *cell.co_owner_wer_percent.items()]:
                current = result.get(owner)
                if current is None or wer < current:
                    result[owner] = wer
        return result

    def frontier(self, model_id: Optional[str] = None) -> List[dict]:
        """The quality-vs-WER frontier: cells sorted by descending WER.

        Each entry pairs the ownership evidence with the quality cost the
        attacker paid for it, so reading the list top to bottom answers
        "how much model quality must an adversary destroy to push the WER
        this low?".  Cells without quality measurements are skipped.
        """
        cells = [
            cell
            for cell in self.cells_for(model_id=model_id)
            if cell.perplexity is not None
        ]
        cells.sort(key=lambda cell: (-cell.wer_percent, cell.perplexity))
        return [
            {
                "cell_id": cell.cell_id,
                "attack": cell.attack,
                "strength": cell.strength,
                "wer_percent": cell.wer_percent,
                "owned": cell.owned,
                "perplexity": cell.perplexity,
                "zero_shot_accuracy": cell.zero_shot_accuracy,
            }
            for cell in cells
        ]

    def decision_digest(self) -> str:
        """SHA-256 over every cell's decision fields.

        Two runs of the same grid must produce the same digest no matter how
        many workers executed them — the benchmark's equivalence gate.
        """
        hasher = hashlib.sha256()
        for cell in self.cells:
            hasher.update(repr(cell.decision_fields()).encode("utf-8"))
        return hasher.hexdigest()

    # -- rendering ---------------------------------------------------------
    def to_table(self, title: str = "Robustness gauntlet") -> Table:
        """Human-readable table of every cell."""
        table = Table(
            title=title,
            columns=[
                "Model",
                "Attack",
                "Strength",
                "PPL",
                "Zero-shot Acc (%)",
                "Owner WER (%)",
                "Attacker WER (%)",
                "Owned",
            ],
        )
        for cell in self.cells:
            table.add_row(
                [
                    cell.model_id,
                    cell.attack,
                    f"{cell.strength:g} {cell.strength_unit}".strip(),
                    "-" if cell.perplexity is None else format_float(cell.perplexity),
                    "-"
                    if cell.zero_shot_accuracy is None
                    else format_float(cell.zero_shot_accuracy),
                    format_float(cell.wer_percent),
                    "-"
                    if cell.attacker_wer_percent is None
                    else format_float(cell.attacker_wer_percent),
                    "yes" if cell.owned else "no",
                ]
            )
        return table

    def render(self) -> str:
        """Rendered table plus the per-attack worst-case summary."""
        lines = [self.to_table().render(), ""]
        for attack, wer in sorted(self.min_wer_by_attack().items()):
            lines.append(f"  min WER under {attack}: {wer:.2f}%")
        lines.append(
            f"  {self.num_cells} cells, {self.workers} workers "
            f"({self.mode}/{self.executor}), "
            f"{self.wall_clock_seconds:.3f}s wall clock "
            f"({self.verify_seconds:.3f}s verification)"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-able form (CLI ``--json``, benchmarks, ``/robustness``)."""
        return {
            "cells": [cell.to_dict() for cell in self.cells],
            "min_wer_by_attack": self.min_wer_by_attack(),
            "frontier": self.frontier(),
            "decision_digest": self.decision_digest(),
            "seed": self.seed,
            "workers": self.workers,
            "mode": self.mode,
            "executor": self.executor,
            "start_method": self.start_method,
            "num_cells": self.num_cells,
            "wall_clock_seconds": self.wall_clock_seconds,
            "verify_seconds": self.verify_seconds,
            "cells_per_second": self.cells_per_second,
            "worker_utilization": dict(self.worker_utilization),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }

    def to_json(self, indent: int = 2) -> str:
        """Serialized :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def summary(self) -> str:
        """One-line human-readable summary."""
        worst = self.min_wer_by_attack()
        worst_attack = min(worst, key=worst.get) if worst else "-"
        return (
            f"gauntlet: {self.num_cells} cells over {len(self.attacks())} attacks, "
            f"worst WER {worst.get(worst_attack, 0.0):.2f}% ({worst_attack}), "
            f"{self.wall_clock_seconds:.3f}s wall clock, {self.workers} workers"
        )
