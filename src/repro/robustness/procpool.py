"""Process-pool execution of gauntlet cells over shared-memory residents.

The thread-mode gauntlet is GIL-bound wherever an attack's heavy stage is
Python-level work (GPTQ requantization, adaptive-oracle scoring), so on
multi-core boxes ``mode="process"`` farms cells out to real processes.  The
memory model:

* **Shared, read-only, published once** — every subject model and owner key
  is flattened into one :class:`~repro.engine.shm.SharedArena` block; each
  worker re-materializes zero-copy read-only views at initialization.  The
  per-worker marginal footprint is therefore O(attacked model), not
  O(subject + attacked).
* **Pickled once per worker** — the small context (attack specs, evaluation
  harnesses, precomputed key locations, thresholds, the grid seed) rides in
  a :class:`WorkerPayload` through the pool initializer.
* **Pickled per cell** — only a :class:`CellTask` (four scalars) goes out
  and a :class:`CellOutcome` (verdicts + quality numbers) comes back.

The task/outcome protocol is deliberately transport-agnostic — a task is
pure coordinates and an outcome is pure evidence, with every array-sized
object resident on the worker side — so the same cell executor can later be
backed by remote hosts instead of local processes.

Determinism: a worker derives each cell's RNG from ``(seed, coordinates)``
exactly as the in-process modes do, verification consumes the parent's
precomputed locations verbatim, and location reproduction itself is a pure
function of the key — so decision digests are bit-identical to serial and
thread execution at any worker count and under any start method.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.keys import WatermarkKey
from repro.engine.engine import FleetVerificationSession, WatermarkEngine
from repro.engine.reports import PairVerification
from repro.engine.shm import (
    ArenaHandle,
    ArenaView,
    SharedArena,
    SharedKeyHandle,
    SharedModelHandle,
    share_key,
    share_model,
)
from repro.eval.harness import EvaluationHarness, QualityReport
from repro.obs.trace import SpanRecord, TraceCollector, span, tracing
from repro.quant.base import QuantizedModel
from repro.robustness.attacks import AttackSpec
from repro.utils.logging import get_logger
from repro.utils.rng import new_rng

__all__ = [
    "START_METHODS",
    "CellTask",
    "CellOutcome",
    "WorkerPayload",
    "ProcessCellExecutor",
    "resolve_start_method",
]

logger = get_logger("robustness.procpool")

#: Start methods the process executor accepts.
START_METHODS = ("fork", "spawn", "forkserver")


def resolve_start_method(requested: Optional[str] = None) -> str:
    """The multiprocessing start method to use.

    Explicit ``requested`` wins, then the ``REPRO_GAUNTLET_START_METHOD``
    environment variable, then the platform default (``fork`` on Linux,
    ``spawn`` on macOS/Windows).  Results are identical either way — the
    choice only trades worker startup cost (``spawn`` re-imports the world)
    against ``fork``'s inherited-state hazards (which
    ``repro.engine.engine._reset_engines_after_fork`` repairs).
    """
    if requested is not None:
        if requested not in START_METHODS:
            raise ValueError(
                f"start method must be one of {START_METHODS}, got {requested!r}"
            )
        return requested
    env = os.environ.get("REPRO_GAUNTLET_START_METHOD")
    if env:
        if env in START_METHODS:
            return env
        logger.warning("ignoring unknown REPRO_GAUNTLET_START_METHOD=%r", env)
    return multiprocessing.get_start_method()


@dataclass(frozen=True)
class CellTask:
    """Coordinates of one grid cell — all a worker needs beyond its payload.

    Four scalars; everything array-sized is already resident in the worker.
    The id derivations must stay in lockstep with
    ``repro.robustness.gauntlet._Cell`` (the in-process modes) — they are the
    suspect ids the verification evidence is keyed by.
    """

    index: int
    model_id: str
    attack_name: str
    strength: float

    @property
    def cell_id(self) -> str:
        return f"{self.model_id}/{self.attack_name}@{self.strength:g}"

    @property
    def attacker_key_id(self) -> str:
        return f"{self.cell_id}#attacker"


@dataclass
class CellOutcome:
    """One executed cell's evidence, shipped back to the parent.

    Mirrors exactly what the streaming mode's ``run_cell`` closure produces,
    so the parent assembles identical
    :class:`~repro.robustness.report.GauntletCellResult` rows from it.
    """

    index: int
    owner: PairVerification
    co: Dict[str, PairVerification]
    attacker: Optional[PairVerification]
    quality: Optional[QualityReport]
    attack_seconds: float
    verify_seconds: float
    info: Dict[str, object]
    #: Telemetry payload: the executing worker's pid and (tracing only) the
    #: spans recorded inside the worker, for the parent collector to merge.
    #: Informational — never flows into the cell's decision fields.
    worker_pid: int = 0
    spans: List[SpanRecord] = field(default_factory=list)


@dataclass(frozen=True)
class WorkerPayload:
    """Per-worker resident context, delivered through the pool initializer.

    ``arena``/``models``/``keys`` are shared-memory handles (bulk arrays are
    never pickled); the rest is small and rides the pickle: attack specs,
    optional per-subject harnesses, the parent's precomputed per-key
    locations, co-owner key-id wiring, decision thresholds and the grid seed.
    """

    arena: ArenaHandle
    models: Mapping[str, SharedModelHandle]
    keys: Mapping[str, SharedKeyHandle]
    key_locations: Mapping[str, Mapping[str, np.ndarray]]
    co_key_ids: Mapping[str, Tuple[Tuple[str, str], ...]]
    attacks: Mapping[str, AttackSpec]
    harnesses: Mapping[str, EvaluationHarness]
    evaluate_quality: bool
    seed: int
    wer_threshold: float
    max_false_claim_probability: Optional[float]
    #: Record spans inside workers and ship them back on each outcome.
    #: Pure telemetry: the attack/verify path is identical either way.
    trace: bool = False


@dataclass
class _WorkerState:
    """Module-global state of one worker process."""

    models: Dict[str, QuantizedModel]
    session: FleetVerificationSession
    payload: WorkerPayload
    view: ArenaView
    #: Worker-local span sink when the payload enables tracing, else ``None``.
    collector: Optional[TraceCollector] = None


_WORKER: Optional[_WorkerState] = None


def _init_worker(payload: WorkerPayload) -> None:
    """Pool initializer: attach the arena and build this worker's substrate.

    Each worker gets a private :class:`WatermarkEngine` (and with it a
    private plan cache) — per-worker cache hygiene instead of cross-process
    cache coherence.  The verification session is pre-seeded with the
    parent's reproduced locations, so no worker repeats the scoring pass for
    registered keys; only per-cell attacker keys (re-watermarking cells)
    reproduce locally, which is deterministic and therefore digest-safe.
    """
    global _WORKER
    collector = TraceCollector() if payload.trace else None
    with tracing(collector) if collector is not None else contextlib.nullcontext():
        with span("shm.restore", models=len(payload.models), keys=len(payload.keys)):
            view = payload.arena.attach()
            models = {
                model_id: handle.restore(view)
                for model_id, handle in payload.models.items()
            }
            keys = {
                key_id: handle.restore(view) for key_id, handle in payload.keys.items()
            }
        engine = WatermarkEngine()
        session = engine.verification_session(
            keys=keys,
            wer_threshold=payload.wer_threshold,
            max_false_claim_probability=payload.max_false_claim_probability,
        )
        for key_id, locations in payload.key_locations.items():
            session.preload_locations(key_id, locations)
    _WORKER = _WorkerState(
        models=models, session=session, payload=payload, view=view, collector=collector
    )


def _run_cell(task: CellTask) -> CellOutcome:
    """Execute one cell in a worker: attack → quality → verify → release."""
    state = _WORKER
    if state is None:
        raise RuntimeError("worker not initialized (pool built without _init_worker)")
    payload = state.payload
    subject = state.models[task.model_id]
    spec = payload.attacks[task.attack_name]
    # Identical derivation to Gauntlet._cell_rng — the executor must never
    # influence the attack randomness.
    rng = new_rng(
        payload.seed, "gauntlet", task.model_id, task.attack_name, f"{task.strength:g}"
    )
    with tracing(state.collector) if state.collector is not None else contextlib.nullcontext():
        with span(
            "gauntlet.cell",
            cell=task.cell_id,
            attack=task.attack_name,
            strength=task.strength,
        ):
            start = time.perf_counter()
            outcome = spec.apply(subject, task.strength, rng)
            quality = (
                payload.harnesses[task.model_id].evaluate(outcome.model)
                if payload.evaluate_quality
                else None
            )
            attack_seconds = time.perf_counter() - start
            verify_start = time.perf_counter()
            owner = state.session.verify(task.cell_id, outcome.model, task.model_id)
            co = {
                owner_id: state.session.verify(task.cell_id, outcome.model, key_id)
                for owner_id, key_id in payload.co_key_ids.get(task.model_id, ())
            }
            attacker = None
            if outcome.attacker_key is not None:
                attacker = state.session.verify_once(
                    task.cell_id, outcome.model, outcome.attacker_key,
                    task.attacker_key_id,
                )
            verify_seconds = time.perf_counter() - verify_start
    return CellOutcome(
        index=task.index,
        owner=owner,
        co=co,
        attacker=attacker,
        quality=quality,
        attack_seconds=attack_seconds,
        verify_seconds=verify_seconds,
        info=dict(outcome.info),
        worker_pid=os.getpid(),
        # Drained per cell so every span (including the worker's one-time
        # shm.restore) rides back exactly once.
        spans=state.collector.drain() if state.collector is not None else [],
    )


class ProcessCellExecutor:
    """Owns one gauntlet run's arena + process pool, as a context manager.

    Construction publishes the models and keys into shared memory (the only
    copy the whole run pays); entering spawns the pool; :meth:`run` maps
    tasks in submission order.  Exiting shuts the pool down and closes the
    arena in a ``finally`` — combined with the arena's atexit sweep, the
    shared block is unlinked exactly once even when a worker dies mid-cell
    (the ``BrokenProcessPool`` propagates through ``__exit__``).
    """

    def __init__(
        self,
        models: Mapping[str, QuantizedModel],
        keys: Mapping[str, WatermarkKey],
        key_locations: Mapping[str, Mapping[str, np.ndarray]],
        co_key_ids: Mapping[str, Tuple[Tuple[str, str], ...]],
        attacks: Mapping[str, AttackSpec],
        harnesses: Mapping[str, EvaluationHarness],
        evaluate_quality: bool,
        seed: int,
        wer_threshold: float,
        max_false_claim_probability: Optional[float],
        workers: int,
        start_method: Optional[str] = None,
        trace: bool = False,
    ) -> None:
        self._workers = max(1, int(workers))
        self.start_method = resolve_start_method(start_method)
        self._context = multiprocessing.get_context(self.start_method)
        self._arena = SharedArena()
        self._pool: Optional[ProcessPoolExecutor] = None
        try:
            with span("shm.publish", models=len(models), keys=len(keys)):
                model_handles = {
                    model_id: share_model(self._arena, model, f"model/{model_id}")
                    for model_id, model in models.items()
                }
                key_handles = {
                    key_id: share_key(self._arena, key, f"key/{key_id}")
                    for key_id, key in keys.items()
                }
                arena_handle = self._arena.seal()
        except BaseException:
            self._arena.close()
            raise
        self._payload = WorkerPayload(
            arena=arena_handle,
            models=model_handles,
            keys=key_handles,
            key_locations={kid: dict(locs) for kid, locs in key_locations.items()},
            co_key_ids=dict(co_key_ids),
            attacks=dict(attacks),
            harnesses=dict(harnesses),
            evaluate_quality=evaluate_quality,
            seed=seed,
            wer_threshold=wer_threshold,
            max_false_claim_probability=max_false_claim_probability,
            trace=trace,
        )

    def __enter__(self) -> "ProcessCellExecutor":
        self._pool = ProcessPoolExecutor(
            max_workers=self._workers,
            mp_context=self._context,
            initializer=_init_worker,
            initargs=(self._payload,),
        )
        return self

    def run(
        self,
        tasks: Sequence[CellTask],
        on_complete: Optional[Callable[[CellOutcome], None]] = None,
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> List[CellOutcome]:
        """Execute ``tasks`` on the pool; outcomes come back in task order.

        ``on_complete`` fires in the parent as each cell finishes (completion
        order, not task order) — the hook live progress rendering hangs off.
        The returned list is always task-ordered regardless: each outcome
        carries its grid ``index``, so the ordering never depends on which
        worker finished first.

        ``should_stop`` is the cooperative-cancellation probe: checked after
        every completion batch; when it returns True, not-yet-started cells
        are cancelled, in-flight cells are drained to completion (a worker
        process cannot be interrupted mid-cell), and the partial outcome
        list is returned in task order.
        """
        if self._pool is None:
            raise RuntimeError("executor not entered; use it as a context manager")
        if on_complete is None and should_stop is None:
            return list(self._pool.map(_run_cell, tasks))
        futures = {self._pool.submit(_run_cell, task): task for task in tasks}
        slots: List[Optional[CellOutcome]] = [None] * len(tasks)
        offset = {task.index: position for position, task in enumerate(tasks)}
        pending = set(futures)
        while pending:
            if should_stop is not None and should_stop():
                # Unstarted cells are dropped; started ones finish below so
                # their results (and checkpoint appends) are not lost.
                still_running = {f for f in pending if not f.cancel()}
                for future in still_running:
                    outcome = future.result()
                    slots[offset[outcome.index]] = outcome
                    if on_complete is not None:
                        on_complete(outcome)
                break
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                outcome = future.result()
                slots[offset[outcome.index]] = outcome
                if on_complete is not None:
                    on_complete(outcome)
        return [outcome for outcome in slots if outcome is not None]

    def __exit__(self, *exc_info) -> None:
        try:
            if self._pool is not None:
                self._pool.shutdown(wait=True, cancel_futures=True)
                self._pool = None
        finally:
            self._arena.close()
