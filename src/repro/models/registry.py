"""Model zoo: the OPT and LLaMA-2 "sim" configurations.

The paper evaluates nine checkpoints — OPT-{125M, 1.3B, 2.7B, 6.7B, 13B, 30B}
and LLaMA-2-{7B, 13B, 70B}.  The registry defines one scaled-down simulated
configuration per checkpoint, preserving the properties that matter for the
watermarking study:

* the OPT sims use LayerNorm + ReLU + learned positions, the LLaMA-2 sims use
  RMSNorm + SiLU (no learned positions), matching the real architectures;
* model capacity grows monotonically with the virtual parameter count, so the
  larger sims have more quantization layers and lower perplexity;
* the ``virtual_params_billions`` field drives the paper's candidate-pool
  ratio rule (50 below 6.7B, 60 at and above).

:func:`get_pretrained_model` returns a model trained on the WikiText-sim
training split, cached per (name, profile) so that experiments and benchmarks
sharing a process never retrain the same model twice.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Tuple

from repro.data.wikitext import WikiTextSim, load_wikitext_sim
from repro.models.config import ModelConfig
from repro.models.training import TrainingConfig, train_language_model
from repro.models.transformer import TransformerLM
from repro.utils.logging import get_logger

__all__ = [
    "MODEL_REGISTRY",
    "TRAINING_PROFILES",
    "get_model_config",
    "get_pretrained_model",
    "get_pretrained_model_and_data",
    "list_model_names",
]

logger = get_logger("models.registry")

_VOCAB_SIZE = 512
_MAX_SEQ_LEN = 64


def _opt(name: str, d_model: int, n_layers: int, n_heads: int, billions: float) -> ModelConfig:
    return ModelConfig(
        name=name,
        vocab_size=_VOCAB_SIZE,
        d_model=d_model,
        n_layers=n_layers,
        n_heads=n_heads,
        d_ff=4 * d_model,
        max_seq_len=_MAX_SEQ_LEN,
        norm_type="layernorm",
        activation="relu",
        family="opt",
        virtual_params_billions=billions,
    )


def _llama(name: str, d_model: int, n_layers: int, n_heads: int, billions: float) -> ModelConfig:
    # LLaMA-2 uses a ~2.7x FFN expansion (SwiGLU); the sim keeps a plain SiLU
    # MLP but mirrors the narrower expansion ratio.
    d_ff = int(round(2.75 * d_model / 4)) * 4
    return ModelConfig(
        name=name,
        vocab_size=_VOCAB_SIZE,
        d_model=d_model,
        n_layers=n_layers,
        n_heads=n_heads,
        d_ff=d_ff,
        max_seq_len=_MAX_SEQ_LEN,
        norm_type="rmsnorm",
        activation="silu",
        family="llama2",
        virtual_params_billions=billions,
    )


MODEL_REGISTRY: Dict[str, ModelConfig] = {
    config.name: config
    for config in [
        _opt("opt-125m-sim", d_model=32, n_layers=2, n_heads=2, billions=0.125),
        _opt("opt-1.3b-sim", d_model=48, n_layers=2, n_heads=3, billions=1.3),
        _opt("opt-2.7b-sim", d_model=64, n_layers=3, n_heads=4, billions=2.7),
        _opt("opt-6.7b-sim", d_model=64, n_layers=4, n_heads=4, billions=6.7),
        _opt("opt-13b-sim", d_model=80, n_layers=4, n_heads=5, billions=13.0),
        _opt("opt-30b-sim", d_model=96, n_layers=5, n_heads=6, billions=30.0),
        _llama("llama2-7b-sim", d_model=64, n_layers=4, n_heads=4, billions=7.0),
        _llama("llama2-13b-sim", d_model=80, n_layers=4, n_heads=5, billions=13.0),
        _llama("llama2-70b-sim", d_model=112, n_layers=5, n_heads=7, billions=70.0),
    ]
}

OPT_FAMILY: List[str] = [name for name, cfg in MODEL_REGISTRY.items() if cfg.family == "opt"]
LLAMA2_FAMILY: List[str] = [
    name for name, cfg in MODEL_REGISTRY.items() if cfg.family == "llama2"
]

#: Training profiles: "default" is used by the experiment/benchmark harnesses,
#: "smoke" trains just enough for integration tests to run quickly.
TRAINING_PROFILES: Dict[str, TrainingConfig] = {
    # The default profile trains each sim long enough that the quantized
    # transformer blocks carry most of the corpus structure (disabling them
    # multiplies perplexity many times over) — a prerequisite for the
    # fidelity/attack experiments to have a quality signal to measure.
    "default": TrainingConfig(steps=500, batch_size=12, sequence_length=33, learning_rate=1e-2),
    # The smoke profile is for integration tests: fast, but the resulting
    # model is under-trained and its quality metrics are not meaningful.
    "smoke": TrainingConfig(steps=40, batch_size=4, sequence_length=17, learning_rate=8e-3),
}


def list_model_names(family: str = "all") -> List[str]:
    """Names of registered models, optionally filtered by family."""
    if family == "all":
        return list(MODEL_REGISTRY)
    return [name for name, config in MODEL_REGISTRY.items() if config.family == family]


def get_model_config(name: str) -> ModelConfig:
    """Look up a registered :class:`ModelConfig` by name."""
    try:
        return MODEL_REGISTRY[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown model {name!r}; registered models: {sorted(MODEL_REGISTRY)}"
        ) from exc


@lru_cache(maxsize=32)
def _cached_pretrained(name: str, profile: str, data_seed: int) -> Tuple[TransformerLM, WikiTextSim]:
    config = get_model_config(name)
    if profile not in TRAINING_PROFILES:
        raise KeyError(f"unknown training profile {profile!r}")
    dataset = load_wikitext_sim(vocab_size=config.vocab_size, seed=data_seed)
    model = TransformerLM(config, seed=0)
    training_config = TRAINING_PROFILES[profile]
    logger.info("training %s (%s profile, %d steps)", name, profile, training_config.steps)
    train_language_model(model, dataset.train, training_config)
    return model, dataset


def get_pretrained_model_and_data(
    name: str, profile: str = "default", data_seed: int = 1234
) -> Tuple[TransformerLM, WikiTextSim]:
    """Return a pre-trained sim model together with its dataset.

    The returned model is a *clone* of the cached instance, so callers are
    free to mutate it (quantize, watermark, attack) without corrupting the
    cache.
    """
    model, dataset = _cached_pretrained(name, profile, data_seed)
    return model.clone(), dataset


def get_pretrained_model(
    name: str, profile: str = "default", data_seed: int = 1234
) -> TransformerLM:
    """Return a pre-trained sim model (see :func:`get_pretrained_model_and_data`)."""
    model, _ = get_pretrained_model_and_data(name, profile, data_seed)
    return model
