"""Model architecture configuration.

A :class:`ModelConfig` fully describes one simulated LLM: its transformer
dimensions, which architectural family it mimics (OPT uses LayerNorm + ReLU
and learned positional embeddings; LLaMA-2 uses RMSNorm + SiLU), and the
"virtual" parameter count of the real model it stands in for (used only for
selecting the candidate-pool ratio rule from the paper, which differs for
models below and above 6.7B parameters).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

__all__ = ["ModelConfig"]

NormType = Literal["layernorm", "rmsnorm"]
ActivationType = Literal["relu", "silu", "gelu"]
Family = Literal["opt", "llama2", "custom"]


@dataclass(frozen=True)
class ModelConfig:
    """Architecture description of a simulated decoder-only LM.

    Parameters
    ----------
    name:
        Registry name, e.g. ``"opt-2.7b-sim"``.
    vocab_size:
        Token vocabulary size (including special tokens).
    d_model:
        Hidden/embedding width.
    n_layers:
        Number of transformer blocks.
    n_heads:
        Attention heads; must divide ``d_model``.
    d_ff:
        Hidden width of the feed-forward block.
    max_seq_len:
        Maximum sequence length supported by the positional embedding.
    norm_type:
        ``"layernorm"`` (OPT-style) or ``"rmsnorm"`` (LLaMA-style).
    activation:
        Feed-forward nonlinearity.
    family:
        Which real model family this config simulates.
    virtual_params_billions:
        Parameter count (in billions) of the real model being simulated.
        EmMark's candidate pool-size rule switches at 6.7B.
    outlier_channel_fraction:
        Fraction of hidden channels given an amplified LayerNorm/RMSNorm gain
        at initialisation, creating the activation-outlier structure observed
        in real LLMs that activation-aware quantization and EmMark exploit.
    outlier_gain:
        Multiplicative gain applied to the outlier channels.
    init_std:
        Standard deviation of the weight initialisation.
    """

    name: str
    vocab_size: int = 512
    d_model: int = 64
    n_layers: int = 4
    n_heads: int = 4
    d_ff: int = 256
    max_seq_len: int = 64
    norm_type: NormType = "layernorm"
    activation: ActivationType = "relu"
    family: Family = "custom"
    virtual_params_billions: float = 0.0
    outlier_channel_fraction: float = 0.08
    outlier_gain: float = 8.0
    init_std: float = 0.05
    tie_embeddings: bool = False
    dropout: float = 0.0
    extra: dict = field(default_factory=dict, compare=False, hash=False)

    def __post_init__(self) -> None:
        if self.d_model % self.n_heads != 0:
            raise ValueError(
                f"d_model ({self.d_model}) must be divisible by n_heads ({self.n_heads})"
            )
        if self.vocab_size < 8:
            raise ValueError("vocab_size must be at least 8")
        if self.n_layers < 1:
            raise ValueError("n_layers must be >= 1")
        if not 0.0 <= self.outlier_channel_fraction <= 1.0:
            raise ValueError("outlier_channel_fraction must be in [0, 1]")
        if self.max_seq_len < 2:
            raise ValueError("max_seq_len must be >= 2")

    @property
    def head_dim(self) -> int:
        """Per-head dimensionality."""
        return self.d_model // self.n_heads

    @property
    def num_linear_layers(self) -> int:
        """Number of quantizable linear ("quantization") layers.

        Each transformer block contributes q/k/v/o projections plus the two
        feed-forward projections; the final LM head is also a linear layer but
        is conventionally kept in full precision by the quantization
        frameworks the paper builds on, so it is not counted.
        """
        return self.n_layers * 6

    def num_parameters(self) -> int:
        """Total number of trainable scalar parameters of the sim model."""
        embed = self.vocab_size * self.d_model
        pos = self.max_seq_len * self.d_model if self.family != "llama2" else 0
        per_block_attn = 4 * (self.d_model * self.d_model + self.d_model)
        per_block_mlp = (
            self.d_model * self.d_ff + self.d_ff + self.d_ff * self.d_model + self.d_model
        )
        norm_params = 2 * self.d_model if self.norm_type == "layernorm" else self.d_model
        per_block = per_block_attn + per_block_mlp + 2 * norm_params
        final_norm = norm_params
        lm_head = 0 if self.tie_embeddings else self.vocab_size * self.d_model
        return embed + pos + self.n_layers * per_block + final_norm + lm_head

    def describe(self) -> str:
        """One-line human-readable summary used in logs and reports."""
        return (
            f"{self.name}: {self.family} sim, d_model={self.d_model}, "
            f"layers={self.n_layers}, heads={self.n_heads}, d_ff={self.d_ff}, "
            f"vocab={self.vocab_size}, ~{self.num_parameters() / 1e3:.0f}k params "
            f"(simulating {self.virtual_params_billions}B)"
        )
