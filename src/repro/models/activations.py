"""Calibration passes collecting per-channel activation statistics.

EmMark's robustness score :math:`S_r` and the activation-aware quantizers
(AWQ, SmoothQuant, LLM.int8()) all need the same quantity: for every linear
("quantization") layer, the average absolute magnitude of the activation
feeding each *input channel*, measured on a small calibration corpus with the
**full-precision** model.  The paper denotes this :math:`A_f`.

:class:`ActivationStats` stores these per-layer channel vectors;
:func:`collect_activation_stats` runs the calibration forward passes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

import numpy as np

from repro.data.corpus import TokenCorpus
from repro.models.transformer import TransformerLM

__all__ = ["ActivationStats", "ActivationCapture", "collect_activation_stats"]


class ActivationCapture:
    """Accumulator passed into the model forward to record linear inputs.

    For each linear layer (identified by its dotted name) the capture keeps a
    running sum of per-channel absolute activations, a running sum of squares
    (for diagnostics), the per-channel maximum, and the number of observed
    positions.
    """

    def __init__(self, collect_gram: bool = True) -> None:
        self._collect_gram = collect_gram
        self._abs_sum: Dict[str, np.ndarray] = {}
        self._sq_sum: Dict[str, np.ndarray] = {}
        self._max: Dict[str, np.ndarray] = {}
        self._gram: Dict[str, np.ndarray] = {}
        self._count: Dict[str, int] = {}

    def update(self, name: str, x: np.ndarray) -> None:
        """Record a batch of activations ``x`` of shape ``(..., channels)``."""
        raw = np.asarray(x, dtype=np.float64).reshape(-1, x.shape[-1])
        flat = np.abs(raw)
        if name not in self._abs_sum:
            channels = flat.shape[1]
            self._abs_sum[name] = np.zeros(channels)
            self._sq_sum[name] = np.zeros(channels)
            self._max[name] = np.zeros(channels)
            if self._collect_gram:
                self._gram[name] = np.zeros((channels, channels))
            self._count[name] = 0
        self._abs_sum[name] += flat.sum(axis=0)
        self._sq_sum[name] += (flat ** 2).sum(axis=0)
        self._max[name] = np.maximum(self._max[name], flat.max(axis=0))
        if self._collect_gram:
            self._gram[name] += raw.T @ raw
        self._count[name] += flat.shape[0]

    def finalize(self) -> "ActivationStats":
        """Convert the running sums into an :class:`ActivationStats`."""
        mean_abs = {}
        rms = {}
        maxima = {}
        gram = {}
        for name, total in self._abs_sum.items():
            count = max(self._count[name], 1)
            mean_abs[name] = total / count
            rms[name] = np.sqrt(self._sq_sum[name] / count)
            maxima[name] = self._max[name].copy()
            if self._collect_gram:
                gram[name] = self._gram[name] / count
        return ActivationStats(mean_abs=mean_abs, rms=rms, maximum=maxima, gram=gram)


@dataclass
class ActivationStats:
    """Per-layer, per-input-channel activation statistics.

    Attributes
    ----------
    mean_abs:
        ``layer name -> (in_channels,)`` mean absolute activation.  This is
        the paper's :math:`A_f` and the quantity every consumer uses by
        default.
    rms:
        Root-mean-square activation per channel (diagnostics / SmoothQuant).
    maximum:
        Maximum absolute activation per channel (LLM.int8() outlier
        detection).
    gram:
        Per-layer activation Gram matrix ``E[x xᵀ]`` of shape
        ``(in_channels, in_channels)``, used by GPTQ as the (proxy) Hessian
        for its error-compensation step.
    """

    mean_abs: Dict[str, np.ndarray]
    rms: Dict[str, np.ndarray] = field(default_factory=dict)
    maximum: Dict[str, np.ndarray] = field(default_factory=dict)
    gram: Dict[str, np.ndarray] = field(default_factory=dict)

    def layers(self) -> Iterable[str]:
        """Names of the layers with recorded statistics."""
        return self.mean_abs.keys()

    def channel_saliency(self, layer_name: str) -> np.ndarray:
        """Mean absolute activation of each input channel of ``layer_name``."""
        if layer_name not in self.mean_abs:
            raise KeyError(f"no activation statistics recorded for layer {layer_name!r}")
        return self.mean_abs[layer_name]

    def top_channels(self, layer_name: str, fraction: float) -> np.ndarray:
        """Indices of the most salient channels of a layer.

        Parameters
        ----------
        layer_name:
            Linear layer name.
        fraction:
            Fraction of channels to return (at least one channel).
        """
        saliency = self.channel_saliency(layer_name)
        count = max(1, int(round(saliency.size * fraction)))
        return np.argsort(saliency)[::-1][:count]

    def to_arrays(self) -> Dict[str, np.ndarray]:
        """Flatten to a dict of arrays for ``.npz`` serialization."""
        out: Dict[str, np.ndarray] = {}
        for name, value in self.mean_abs.items():
            out[f"mean_abs/{name}"] = value
        for name, value in self.rms.items():
            out[f"rms/{name}"] = value
        for name, value in self.maximum.items():
            out[f"max/{name}"] = value
        for name, value in self.gram.items():
            out[f"gram/{name}"] = value
        return out

    @classmethod
    def from_arrays(cls, arrays: Dict[str, np.ndarray]) -> "ActivationStats":
        """Inverse of :meth:`to_arrays`."""
        mean_abs: Dict[str, np.ndarray] = {}
        rms: Dict[str, np.ndarray] = {}
        maximum: Dict[str, np.ndarray] = {}
        gram: Dict[str, np.ndarray] = {}
        for key, value in arrays.items():
            kind, _, name = key.partition("/")
            if kind == "mean_abs":
                mean_abs[name] = value
            elif kind == "rms":
                rms[name] = value
            elif kind == "max":
                maximum[name] = value
            elif kind == "gram":
                gram[name] = value
        return cls(mean_abs=mean_abs, rms=rms, maximum=maximum, gram=gram)


def collect_activation_stats(
    model: TransformerLM,
    corpus: TokenCorpus,
    sequence_length: int = 32,
    max_sequences: Optional[int] = 32,
) -> ActivationStats:
    """Run the full-precision model over a calibration corpus and collect stats.

    Parameters
    ----------
    model:
        The full-precision simulated LLM.
    corpus:
        Calibration corpus (a small held-out slice of the training data).
    sequence_length:
        Window length of each calibration forward pass.
    max_sequences:
        Cap on the number of calibration windows (keeps calibration cheap, as
        in the real AWQ/SmoothQuant pipelines which use ~128 samples).
    """
    capture = ActivationCapture()
    batch = corpus.as_matrix(sequence_length, max_sequences)
    if batch.shape[0] == 0:
        raise ValueError("calibration corpus too short for the requested sequence length")
    model.forward(batch, capture=capture)
    return capture.finalize()
