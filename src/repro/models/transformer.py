"""The simulated decoder-only transformer language model.

:class:`TransformerLM` combines the layers from :mod:`repro.models.layers`
into an OPT / LLaMA-style decoder:

``tokens → token embedding (+ learned positions for OPT) → N transformer
blocks → final norm → LM head → logits``

The class exposes exactly the handles the rest of the reproduction needs:

* ``forward`` with optional activation capture (the full-precision activation
  statistics EmMark's robustness score and the activation-aware quantizers
  consume),
* ``loss_and_gradients`` for the pre-training / fine-tuning loops,
* ``named_linear_layers`` enumerating the quantizable weight matrices in a
  stable order (these are the paper's "quantization layers"),
* ``sequence_log_likelihood`` used by the zero-shot evaluation harness, and
* ``clone`` / ``state_dict`` round-tripping for attacks that need pristine
  copies.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.models.config import ModelConfig
from repro.models.layers import (
    Embedding,
    LayerNorm,
    Linear,
    RMSNorm,
    TransformerBlock,
    cross_entropy,
    cross_entropy_backward,
)
from repro.models.parameters import ParameterModule
from repro.utils.rng import new_rng

__all__ = ["TransformerLM"]


class TransformerLM(ParameterModule):
    """Decoder-only transformer language model backed by NumPy.

    Parameters
    ----------
    config:
        Architecture description.
    seed:
        Seed for weight initialisation.  Two models built with the same
        config and seed are bit-identical.
    """

    def __init__(self, config: ModelConfig, seed: int = 0) -> None:
        self.config = config
        self.seed = int(seed)
        rng = new_rng(seed, "model-init", config.name)
        outlier_count = max(1, int(round(config.d_model * config.outlier_channel_fraction)))
        outlier_channels = rng.choice(config.d_model, size=outlier_count, replace=False)
        self.outlier_channels = np.sort(outlier_channels)

        self.token_embedding = Embedding(config.vocab_size, config.d_model, rng, config.init_std)
        self.uses_positional_embedding = config.family != "llama2"
        if self.uses_positional_embedding:
            self.position_embedding = Embedding(
                config.max_seq_len, config.d_model, rng, config.init_std
            )
        self.blocks = [
            TransformerBlock(
                config.d_model,
                config.n_heads,
                config.d_ff,
                rng,
                norm_type=config.norm_type,
                activation=config.activation,
                init_std=config.init_std,
                outlier_channels=self.outlier_channels,
                outlier_gain=config.outlier_gain,
            )
            for _ in range(config.n_layers)
        ]
        norm_cls = LayerNorm if config.norm_type == "layernorm" else RMSNorm
        self.final_norm = norm_cls(config.d_model)
        self.lm_head = Linear(config.d_model, config.vocab_size, rng, config.init_std, bias=False)
        self._assign_linear_names()

    # ------------------------------------------------------------------
    # Structure helpers
    # ------------------------------------------------------------------
    def _assign_linear_names(self) -> None:
        """Store each linear layer's dotted path on the layer itself."""
        for name, linear in self.named_linear_layers(include_lm_head=True):
            linear.full_name = name

    def named_linear_layers(
        self, include_lm_head: bool = False
    ) -> Iterator[Tuple[str, Linear]]:
        """Yield ``(dotted_name, Linear)`` for every quantizable projection.

        The iteration order is deterministic (block index, then q/k/v/o,
        fc_in, fc_out) — the quantization and watermarking code rely on the
        order being stable between runs.  The LM head is excluded by default
        because the quantization frameworks the paper builds on keep it in
        full precision.
        """
        for index, block in enumerate(self.blocks):
            yield f"blocks.{index}.attn.q_proj", block.attn.q_proj
            yield f"blocks.{index}.attn.k_proj", block.attn.k_proj
            yield f"blocks.{index}.attn.v_proj", block.attn.v_proj
            yield f"blocks.{index}.attn.o_proj", block.attn.o_proj
            yield f"blocks.{index}.mlp.fc_in", block.mlp.fc_in
            yield f"blocks.{index}.mlp.fc_out", block.mlp.fc_out
        if include_lm_head:
            yield "lm_head", self.lm_head

    def linear_layer_names(self) -> List[str]:
        """Names of the quantizable linear layers, in canonical order."""
        return [name for name, _ in self.named_linear_layers()]

    def get_linear(self, name: str) -> Linear:
        """Look up a linear layer by its dotted name."""
        for candidate_name, linear in self.named_linear_layers(include_lm_head=True):
            if candidate_name == name:
                return linear
        raise KeyError(f"no linear layer named {name!r}")

    @property
    def num_quantization_layers(self) -> int:
        """Number of quantizable linear layers (the paper's ``n``)."""
        return len(self.linear_layer_names())

    # ------------------------------------------------------------------
    # Forward / backward
    # ------------------------------------------------------------------
    def forward(
        self,
        tokens: np.ndarray,
        capture=None,
        return_cache: bool = False,
    ):
        """Compute logits for ``tokens`` of shape ``(batch, seq)``.

        Parameters
        ----------
        tokens:
            Integer token ids.
        capture:
            Optional activation-capture object with an ``update(name, x)``
            method; when provided, every linear layer reports its input.
        return_cache:
            When true, also return the cache needed for a backward pass.
        """
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.ndim == 1:
            tokens = tokens[None, :]
        batch, seq = tokens.shape
        if seq > self.config.max_seq_len:
            raise ValueError(
                f"sequence length {seq} exceeds max_seq_len {self.config.max_seq_len}"
            )
        hidden, cache_tok = self.token_embedding.forward(tokens)
        cache_pos = None
        if self.uses_positional_embedding:
            positions = np.broadcast_to(np.arange(seq), (batch, seq))
            pos_embed, cache_pos = self.position_embedding.forward(positions)
            hidden = hidden + pos_embed
        block_caches = []
        for block in self.blocks:
            hidden, block_cache = block.forward(hidden, capture)
            block_caches.append(block_cache)
        normed, cache_norm = self.final_norm.forward(hidden)
        logits, cache_head = self.lm_head.forward(normed, capture)
        if not return_cache:
            return logits
        cache = {
            "cache_tok": cache_tok,
            "cache_pos": cache_pos,
            "block_caches": block_caches,
            "cache_norm": cache_norm,
            "cache_head": cache_head,
        }
        return logits, cache

    def backward_from_logits(self, dlogits: np.ndarray, cache: Dict) -> None:
        """Back-propagate a logits gradient, accumulating parameter grads."""
        dnormed = self.lm_head.backward(dlogits, cache["cache_head"])
        dhidden = self.final_norm.backward(dnormed, cache["cache_norm"])
        for block, block_cache in zip(reversed(self.blocks), reversed(cache["block_caches"])):
            dhidden = block.backward(dhidden, block_cache)
        if self.uses_positional_embedding and cache["cache_pos"] is not None:
            self.position_embedding.backward(dhidden, cache["cache_pos"])
        self.token_embedding.backward(dhidden, cache["cache_tok"])

    def loss_and_gradients(self, tokens: np.ndarray) -> float:
        """Next-token cross-entropy loss on ``tokens``; accumulates gradients.

        Tokens of shape ``(batch, seq)`` are split into inputs
        ``tokens[:, :-1]`` and targets ``tokens[:, 1:]``.
        """
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.ndim == 1:
            tokens = tokens[None, :]
        inputs, targets = tokens[:, :-1], tokens[:, 1:]
        logits, cache = self.forward(inputs, return_cache=True)
        flat_logits = logits.reshape(-1, self.config.vocab_size)
        flat_targets = targets.reshape(-1)
        loss, probs = cross_entropy(flat_logits, flat_targets)
        dlogits = cross_entropy_backward(probs, flat_targets).reshape(logits.shape)
        self.backward_from_logits(dlogits, cache)
        return loss

    def loss(self, tokens: np.ndarray) -> float:
        """Next-token cross-entropy loss without computing gradients."""
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.ndim == 1:
            tokens = tokens[None, :]
        inputs, targets = tokens[:, :-1], tokens[:, 1:]
        logits = self.forward(inputs)
        flat_logits = logits.reshape(-1, self.config.vocab_size)
        flat_targets = targets.reshape(-1)
        loss, _ = cross_entropy(flat_logits, flat_targets)
        return loss

    # ------------------------------------------------------------------
    # Scoring / generation utilities
    # ------------------------------------------------------------------
    def token_log_probs(self, tokens: np.ndarray) -> np.ndarray:
        """Per-position log-probabilities of the observed next tokens.

        Returns an array of shape ``(batch, seq - 1)`` where entry ``[b, t]``
        is ``log p(tokens[b, t + 1] | tokens[b, : t + 1])``.
        """
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.ndim == 1:
            tokens = tokens[None, :]
        inputs, targets = tokens[:, :-1], tokens[:, 1:]
        logits = self.forward(inputs)
        shifted = logits - logits.max(axis=-1, keepdims=True)
        log_z = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
        log_probs = shifted - log_z
        batch_index = np.arange(tokens.shape[0])[:, None]
        pos_index = np.arange(targets.shape[1])[None, :]
        return log_probs[batch_index, pos_index, targets]

    def sequence_log_likelihood(
        self, context: np.ndarray, continuation: np.ndarray, normalize: bool = True
    ) -> float:
        """Log-likelihood of ``continuation`` given ``context``.

        This is the scoring primitive of the zero-shot evaluation protocol:
        the candidate continuations of a multiple-choice example are ranked by
        this value.  When ``normalize`` is true the log-likelihood is divided
        by the continuation length (the "acc_norm" convention).
        """
        context = np.asarray(context, dtype=np.int64).reshape(-1)
        continuation = np.asarray(continuation, dtype=np.int64).reshape(-1)
        if continuation.size == 0:
            raise ValueError("continuation must contain at least one token")
        full = np.concatenate([context, continuation])[None, :]
        max_len = self.config.max_seq_len
        if full.shape[1] > max_len:
            full = full[:, -max_len:]
        log_probs = self.token_log_probs(full)[0]
        continuation_scores = log_probs[-continuation.size :]
        total = float(continuation_scores.sum())
        if normalize:
            return total / continuation.size
        return total

    def greedy_generate(self, prompt: np.ndarray, num_tokens: int) -> np.ndarray:
        """Greedy decoding used by the examples to show the model in action."""
        tokens = np.asarray(prompt, dtype=np.int64).reshape(-1).tolist()
        for _ in range(num_tokens):
            window = np.array(tokens[-self.config.max_seq_len :], dtype=np.int64)
            logits = self.forward(window[None, :])
            next_token = int(np.argmax(logits[0, -1]))
            tokens.append(next_token)
        return np.array(tokens, dtype=np.int64)

    # ------------------------------------------------------------------
    # Copy helpers
    # ------------------------------------------------------------------
    def clone(self) -> "TransformerLM":
        """Deep copy of the model (same config/seed, copied weights)."""
        other = TransformerLM(self.config, seed=self.seed)
        other.load_state_dict(self.state_dict())
        return other

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"TransformerLM({self.config.describe()})"
