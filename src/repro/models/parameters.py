"""Parameter container shared by all model layers.

The simulated models implement their own forward/backward passes instead of
relying on an autodiff framework, so each trainable tensor is wrapped in a
:class:`Parameter` that couples the value with its accumulated gradient.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

import numpy as np

__all__ = ["Parameter", "ParameterModule"]


class Parameter:
    """A trainable tensor: a value array and an accumulated gradient.

    Parameters
    ----------
    value:
        Initial value; stored as ``float64`` for numerically robust training
        of the small simulated models.
    name:
        Optional diagnostic name; the owning module usually assigns the full
        hierarchical name later via :meth:`ParameterModule.named_parameters`.
    """

    def __init__(self, value: np.ndarray, name: str = "") -> None:
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)
        self.name = name

    @property
    def shape(self) -> Tuple[int, ...]:
        """Shape of the underlying value array."""
        return self.value.shape

    @property
    def size(self) -> int:
        """Number of scalar elements."""
        return int(self.value.size)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to zero."""
        self.grad[...] = 0.0

    def accumulate_grad(self, grad: np.ndarray) -> None:
        """Add ``grad`` into the accumulated gradient (shape-checked)."""
        grad = np.asarray(grad, dtype=np.float64)
        if grad.shape != self.value.shape:
            raise ValueError(
                f"gradient shape {grad.shape} does not match parameter shape {self.value.shape}"
            )
        self.grad += grad

    def copy(self) -> "Parameter":
        """Deep copy of the parameter (value only; gradient reset)."""
        return Parameter(self.value.copy(), name=self.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Parameter(name={self.name!r}, shape={self.value.shape})"


class ParameterModule:
    """Base class for layers that own :class:`Parameter` instances.

    Sub-classes register their parameters and sub-modules as plain attributes;
    :meth:`named_parameters` walks the attribute tree and yields hierarchical
    dotted names, which is how the quantization and watermarking layers refer
    to weight matrices (e.g. ``"blocks.2.attn.q_proj.weight"``).
    """

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs depth-first."""
        for attr_name, attr in vars(self).items():
            full = f"{prefix}.{attr_name}" if prefix else attr_name
            if isinstance(attr, Parameter):
                yield full, attr
            elif isinstance(attr, ParameterModule):
                yield from attr.named_parameters(full)
            elif isinstance(attr, (list, tuple)):
                for index, item in enumerate(attr):
                    if isinstance(item, ParameterModule):
                        yield from item.named_parameters(f"{full}.{index}")
                    elif isinstance(item, Parameter):
                        yield f"{full}.{index}", item

    def parameters(self) -> Iterator[Parameter]:
        """Yield every parameter (without names)."""
        for _, parameter in self.named_parameters():
            yield parameter

    def zero_grad(self) -> None:
        """Reset gradients of every owned parameter."""
        for parameter in self.parameters():
            parameter.zero_grad()

    def num_parameters(self) -> int:
        """Total scalar parameter count of the module tree."""
        return sum(parameter.size for parameter in self.parameters())

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a copy of every parameter value keyed by dotted name."""
        return {name: parameter.value.copy() for name, parameter in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load values produced by :meth:`state_dict` (strict shape check)."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch; missing={sorted(missing)}, unexpected={sorted(unexpected)}"
            )
        for name, parameter in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != parameter.value.shape:
                raise ValueError(
                    f"shape mismatch for {name}: {value.shape} vs {parameter.value.shape}"
                )
            parameter.value = value.copy()
            parameter.zero_grad()
