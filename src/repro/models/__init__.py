"""Simulated language-model substrate.

The paper's experiments run on real OPT and LLaMA-2 checkpoints.  Offline we
substitute a from-scratch NumPy decoder-only transformer:

* :mod:`repro.models.config` — architecture configuration objects.
* :mod:`repro.models.parameters` — the :class:`Parameter` container used by
  every layer (value + gradient).
* :mod:`repro.models.layers` — linear, embedding, normalisation, attention
  and MLP blocks, each with explicit ``forward``/``backward``.
* :mod:`repro.models.transformer` — the :class:`TransformerLM` model.
* :mod:`repro.models.training` — Adam optimizer and the pre-training loop
  used to fit the sim models on the synthetic corpus.
* :mod:`repro.models.activations` — calibration passes that collect the
  per-channel full-precision activation statistics EmMark and the
  activation-aware quantizers need.
* :mod:`repro.models.registry` — the OPT / LLaMA-2 "sim" model zoo and a
  cache of pre-trained instances.
"""

from repro.models.config import ModelConfig
from repro.models.parameters import Parameter
from repro.models.transformer import TransformerLM
from repro.models.activations import ActivationStats, collect_activation_stats
from repro.models.training import AdamOptimizer, TrainingConfig, train_language_model
from repro.models.registry import (
    MODEL_REGISTRY,
    get_model_config,
    get_pretrained_model,
    list_model_names,
)

__all__ = [
    "ModelConfig",
    "Parameter",
    "TransformerLM",
    "ActivationStats",
    "collect_activation_stats",
    "AdamOptimizer",
    "TrainingConfig",
    "train_language_model",
    "MODEL_REGISTRY",
    "get_model_config",
    "get_pretrained_model",
    "list_model_names",
]
