"""Neural-network layers with explicit forward and backward passes.

The simulated LLMs are trained with plain NumPy, so every layer implements

* ``forward(x, ...) -> (y, cache)`` — compute the output and remember the
  intermediate values needed by the backward pass, and
* ``backward(dy, cache) -> dx`` — accumulate parameter gradients in-place and
  return the gradient with respect to the layer input.

The layer set covers everything a decoder-only OPT / LLaMA-style transformer
needs: linear projections, token and positional embeddings, LayerNorm and
RMSNorm, multi-head causal self-attention, and the feed-forward block with
ReLU / SiLU / GELU nonlinearities.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.models.parameters import Parameter, ParameterModule

__all__ = [
    "Linear",
    "Embedding",
    "LayerNorm",
    "RMSNorm",
    "MultiHeadAttention",
    "FeedForward",
    "TransformerBlock",
    "softmax",
    "cross_entropy",
    "cross_entropy_backward",
]

Cache = Dict[str, Any]


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def cross_entropy(logits: np.ndarray, targets: np.ndarray) -> Tuple[float, np.ndarray]:
    """Mean cross-entropy loss over a batch of logits.

    Parameters
    ----------
    logits:
        ``(N, vocab)`` unnormalised scores.
    targets:
        ``(N,)`` integer class labels.

    Returns
    -------
    (loss, probs):
        The scalar mean negative log-likelihood and the softmax probabilities
        (needed by :func:`cross_entropy_backward`).
    """
    if logits.ndim != 2:
        raise ValueError("logits must be 2-D (N, vocab)")
    if targets.shape != (logits.shape[0],):
        raise ValueError("targets must be 1-D with one label per logit row")
    probs = softmax(logits, axis=-1)
    n = logits.shape[0]
    picked = probs[np.arange(n), targets]
    loss = float(-np.mean(np.log(np.clip(picked, 1e-12, None))))
    return loss, probs


def cross_entropy_backward(probs: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """Gradient of the mean cross-entropy loss with respect to the logits."""
    n = probs.shape[0]
    grad = probs.copy()
    grad[np.arange(n), targets] -= 1.0
    return grad / n


class Linear(ParameterModule):
    """Affine projection ``y = x @ W.T + b``.

    The weight is stored with shape ``(out_features, in_features)`` — the same
    layout used by the quantization substrate, where each *column* corresponds
    to an input channel whose activation magnitude determines saliency.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        init_std: float = 0.05,
        bias: bool = True,
    ) -> None:
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(rng.normal(0.0, init_std, size=(out_features, in_features)))
        self.bias = Parameter(np.zeros(out_features)) if bias else None
        #: Full dotted name assigned by the owning model; used as the key for
        #: activation capture and quantization.
        self.full_name: str = ""

    def forward(self, x: np.ndarray, capture: Optional["ActivationCaptureProtocol"] = None) -> Tuple[np.ndarray, Cache]:
        """Apply the projection to ``x`` of shape ``(..., in_features)``."""
        if capture is not None and self.full_name:
            capture.update(self.full_name, x)
        y = x @ self.weight.value.T
        if self.bias is not None:
            y = y + self.bias.value
        return y, {"x": x}

    def backward(self, dy: np.ndarray, cache: Cache) -> np.ndarray:
        """Accumulate weight/bias gradients and return the input gradient."""
        x = cache["x"]
        x2d = x.reshape(-1, self.in_features)
        dy2d = dy.reshape(-1, self.out_features)
        self.weight.accumulate_grad(dy2d.T @ x2d)
        if self.bias is not None:
            self.bias.accumulate_grad(dy2d.sum(axis=0))
        return dy @ self.weight.value


class Embedding(ParameterModule):
    """Token (or positional) embedding table."""

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: np.random.Generator,
        init_std: float = 0.05,
    ) -> None:
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(rng.normal(0.0, init_std, size=(num_embeddings, embedding_dim)))

    def forward(self, ids: np.ndarray) -> Tuple[np.ndarray, Cache]:
        """Gather embeddings for integer ``ids`` of any shape."""
        ids = np.asarray(ids, dtype=np.int64)
        return self.weight.value[ids], {"ids": ids}

    def backward(self, dy: np.ndarray, cache: Cache) -> None:
        """Scatter-add the output gradient back into the table."""
        ids = cache["ids"].reshape(-1)
        dy2d = dy.reshape(-1, self.embedding_dim)
        grad = np.zeros_like(self.weight.value)
        np.add.at(grad, ids, dy2d)
        self.weight.accumulate_grad(grad)


class LayerNorm(ParameterModule):
    """Layer normalisation with learned gain and bias (OPT style).

    ``outlier_channels``/``outlier_gain`` let the model initialisation amplify
    a subset of channels, reproducing the activation-outlier structure of real
    LLMs that SmoothQuant, AWQ and EmMark's saliency score all depend on.
    """

    def __init__(
        self,
        dim: int,
        eps: float = 1e-5,
        outlier_channels: Optional[np.ndarray] = None,
        outlier_gain: float = 1.0,
    ) -> None:
        gamma = np.ones(dim)
        if outlier_channels is not None and outlier_channels.size:
            gamma[outlier_channels] *= outlier_gain
        self.gamma = Parameter(gamma)
        self.beta = Parameter(np.zeros(dim))
        self.eps = float(eps)
        self.dim = dim

    def forward(self, x: np.ndarray) -> Tuple[np.ndarray, Cache]:
        mu = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        std = np.sqrt(var + self.eps)
        xhat = (x - mu) / std
        y = self.gamma.value * xhat + self.beta.value
        return y, {"xhat": xhat, "std": std}

    def backward(self, dy: np.ndarray, cache: Cache) -> np.ndarray:
        xhat, std = cache["xhat"], cache["std"]
        self.gamma.accumulate_grad((dy * xhat).reshape(-1, self.dim).sum(axis=0))
        self.beta.accumulate_grad(dy.reshape(-1, self.dim).sum(axis=0))
        dxhat = dy * self.gamma.value
        mean_dxhat = dxhat.mean(axis=-1, keepdims=True)
        mean_dxhat_xhat = (dxhat * xhat).mean(axis=-1, keepdims=True)
        return (dxhat - mean_dxhat - xhat * mean_dxhat_xhat) / std


class RMSNorm(ParameterModule):
    """Root-mean-square normalisation with learned gain (LLaMA style)."""

    def __init__(
        self,
        dim: int,
        eps: float = 1e-5,
        outlier_channels: Optional[np.ndarray] = None,
        outlier_gain: float = 1.0,
    ) -> None:
        gamma = np.ones(dim)
        if outlier_channels is not None and outlier_channels.size:
            gamma[outlier_channels] *= outlier_gain
        self.gamma = Parameter(gamma)
        self.eps = float(eps)
        self.dim = dim

    def forward(self, x: np.ndarray) -> Tuple[np.ndarray, Cache]:
        rms = np.sqrt(np.mean(x * x, axis=-1, keepdims=True) + self.eps)
        y = self.gamma.value * x / rms
        return y, {"x": x, "rms": rms}

    def backward(self, dy: np.ndarray, cache: Cache) -> np.ndarray:
        x, rms = cache["x"], cache["rms"]
        self.gamma.accumulate_grad((dy * x / rms).reshape(-1, self.dim).sum(axis=0))
        dxhat = dy * self.gamma.value
        mean_dxhat_x = (dxhat * x).mean(axis=-1, keepdims=True)
        return dxhat / rms - x * mean_dxhat_x / (rms ** 3)


def _activation_forward(kind: str, x: np.ndarray) -> Tuple[np.ndarray, Cache]:
    """Forward pass of the feed-forward nonlinearity."""
    if kind == "relu":
        return np.maximum(x, 0.0), {"x": x}
    if kind == "silu":
        sig = 1.0 / (1.0 + np.exp(-x))
        return x * sig, {"x": x, "sig": sig}
    if kind == "gelu":
        # tanh approximation of GELU, matching common transformer implementations
        c = math.sqrt(2.0 / math.pi)
        inner = c * (x + 0.044715 * x ** 3)
        tanh = np.tanh(inner)
        return 0.5 * x * (1.0 + tanh), {"x": x, "tanh": tanh, "inner": inner}
    raise ValueError(f"unknown activation kind {kind!r}")


def _activation_backward(kind: str, dy: np.ndarray, cache: Cache) -> np.ndarray:
    """Backward pass of the feed-forward nonlinearity."""
    x = cache["x"]
    if kind == "relu":
        return dy * (x > 0.0)
    if kind == "silu":
        sig = cache["sig"]
        return dy * (sig * (1.0 + x * (1.0 - sig)))
    if kind == "gelu":
        c = math.sqrt(2.0 / math.pi)
        tanh = cache["tanh"]
        sech2 = 1.0 - tanh ** 2
        d_inner = c * (1.0 + 3.0 * 0.044715 * x ** 2)
        return dy * (0.5 * (1.0 + tanh) + 0.5 * x * sech2 * d_inner)
    raise ValueError(f"unknown activation kind {kind!r}")


class MultiHeadAttention(ParameterModule):
    """Causal multi-head self-attention with separate q/k/v/o projections."""

    def __init__(
        self,
        d_model: int,
        n_heads: int,
        rng: np.random.Generator,
        init_std: float = 0.05,
    ) -> None:
        if d_model % n_heads != 0:
            raise ValueError("d_model must be divisible by n_heads")
        self.d_model = d_model
        self.n_heads = n_heads
        self.head_dim = d_model // n_heads
        self.q_proj = Linear(d_model, d_model, rng, init_std)
        self.k_proj = Linear(d_model, d_model, rng, init_std)
        self.v_proj = Linear(d_model, d_model, rng, init_std)
        self.o_proj = Linear(d_model, d_model, rng, init_std)

    def _split_heads(self, x: np.ndarray) -> np.ndarray:
        batch, seq, _ = x.shape
        return x.reshape(batch, seq, self.n_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: np.ndarray) -> np.ndarray:
        batch, _, seq, _ = x.shape
        return x.transpose(0, 2, 1, 3).reshape(batch, seq, self.d_model)

    def forward(self, x: np.ndarray, capture=None) -> Tuple[np.ndarray, Cache]:
        """Apply causal self-attention to ``x`` of shape ``(batch, seq, d_model)``."""
        batch, seq, _ = x.shape
        q, cache_q = self.q_proj.forward(x, capture)
        k, cache_k = self.k_proj.forward(x, capture)
        v, cache_v = self.v_proj.forward(x, capture)
        qh, kh, vh = self._split_heads(q), self._split_heads(k), self._split_heads(v)
        scale = 1.0 / math.sqrt(self.head_dim)
        scores = np.einsum("bhqd,bhkd->bhqk", qh, kh) * scale
        causal_mask = np.triu(np.ones((seq, seq), dtype=bool), k=1)
        scores = np.where(causal_mask, -1e9, scores)
        attn = softmax(scores, axis=-1)
        context = np.einsum("bhqk,bhkd->bhqd", attn, vh)
        merged = self._merge_heads(context)
        out, cache_o = self.o_proj.forward(merged, capture)
        cache = {
            "cache_q": cache_q,
            "cache_k": cache_k,
            "cache_v": cache_v,
            "cache_o": cache_o,
            "qh": qh,
            "kh": kh,
            "vh": vh,
            "attn": attn,
            "scale": scale,
        }
        return out, cache

    def backward(self, dy: np.ndarray, cache: Cache) -> np.ndarray:
        dmerged = self.o_proj.backward(dy, cache["cache_o"])
        batch, seq, _ = dmerged.shape
        dcontext = dmerged.reshape(batch, seq, self.n_heads, self.head_dim).transpose(0, 2, 1, 3)
        attn, qh, kh, vh, scale = (
            cache["attn"],
            cache["qh"],
            cache["kh"],
            cache["vh"],
            cache["scale"],
        )
        dattn = np.einsum("bhqd,bhkd->bhqk", dcontext, vh)
        dvh = np.einsum("bhqk,bhqd->bhkd", attn, dcontext)
        # softmax backward: ds = attn * (dattn - sum(dattn * attn))
        dscores = attn * (dattn - np.sum(dattn * attn, axis=-1, keepdims=True))
        dqh = np.einsum("bhqk,bhkd->bhqd", dscores, kh) * scale
        dkh = np.einsum("bhqk,bhqd->bhkd", dscores, qh) * scale
        dq = self._merge_heads(dqh)
        dk = self._merge_heads(dkh)
        dv = self._merge_heads(dvh)
        dx = self.q_proj.backward(dq, cache["cache_q"])
        dx = dx + self.k_proj.backward(dk, cache["cache_k"])
        dx = dx + self.v_proj.backward(dv, cache["cache_v"])
        return dx


class FeedForward(ParameterModule):
    """Two-layer feed-forward block with a configurable nonlinearity."""

    def __init__(
        self,
        d_model: int,
        d_ff: int,
        rng: np.random.Generator,
        activation: str = "relu",
        init_std: float = 0.05,
    ) -> None:
        self.fc_in = Linear(d_model, d_ff, rng, init_std)
        self.fc_out = Linear(d_ff, d_model, rng, init_std)
        self.activation = activation

    def forward(self, x: np.ndarray, capture=None) -> Tuple[np.ndarray, Cache]:
        hidden, cache_in = self.fc_in.forward(x, capture)
        activated, cache_act = _activation_forward(self.activation, hidden)
        out, cache_out = self.fc_out.forward(activated, capture)
        return out, {"cache_in": cache_in, "cache_act": cache_act, "cache_out": cache_out}

    def backward(self, dy: np.ndarray, cache: Cache) -> np.ndarray:
        dactivated = self.fc_out.backward(dy, cache["cache_out"])
        dhidden = _activation_backward(self.activation, dactivated, cache["cache_act"])
        return self.fc_in.backward(dhidden, cache["cache_in"])


class TransformerBlock(ParameterModule):
    """Pre-norm transformer decoder block: norm → attention → norm → MLP."""

    def __init__(
        self,
        d_model: int,
        n_heads: int,
        d_ff: int,
        rng: np.random.Generator,
        norm_type: str = "layernorm",
        activation: str = "relu",
        init_std: float = 0.05,
        outlier_channels: Optional[np.ndarray] = None,
        outlier_gain: float = 1.0,
    ) -> None:
        norm_cls = LayerNorm if norm_type == "layernorm" else RMSNorm
        self.norm1 = norm_cls(
            d_model, outlier_channels=outlier_channels, outlier_gain=outlier_gain
        )
        self.attn = MultiHeadAttention(d_model, n_heads, rng, init_std)
        self.norm2 = norm_cls(
            d_model, outlier_channels=outlier_channels, outlier_gain=outlier_gain
        )
        self.mlp = FeedForward(d_model, d_ff, rng, activation, init_std)

    def forward(self, x: np.ndarray, capture=None) -> Tuple[np.ndarray, Cache]:
        normed1, cache_n1 = self.norm1.forward(x)
        attn_out, cache_attn = self.attn.forward(normed1, capture)
        residual1 = x + attn_out
        normed2, cache_n2 = self.norm2.forward(residual1)
        mlp_out, cache_mlp = self.mlp.forward(normed2, capture)
        out = residual1 + mlp_out
        cache = {
            "cache_n1": cache_n1,
            "cache_attn": cache_attn,
            "cache_n2": cache_n2,
            "cache_mlp": cache_mlp,
        }
        return out, cache

    def backward(self, dy: np.ndarray, cache: Cache) -> np.ndarray:
        dmlp = self.mlp.backward(dy, cache["cache_mlp"])
        dresidual1 = dy + self.norm2.backward(dmlp, cache["cache_n2"])
        dattn = self.attn.backward(dresidual1, cache["cache_attn"])
        dx = dresidual1 + self.norm1.backward(dattn, cache["cache_n1"])
        return dx
