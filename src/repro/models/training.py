"""Optimizer and pre-training loop for the simulated language models.

The sim models must actually *fit* the synthetic corpus: the evaluation
metrics only carry signal if the model's perplexity is well below the trivial
(unigram) level so that corrupting salient weights visibly hurts it.  A small
Adam optimizer plus a few hundred steps over the WikiText-sim training split
is enough for every model in the registry.

The same machinery is reused by :mod:`repro.finetune` to build the fine-tuned
"independent" models of the integrity study (Table 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.data.corpus import TokenCorpus
from repro.models.parameters import Parameter
from repro.models.transformer import TransformerLM
from repro.utils.logging import get_logger
from repro.utils.rng import new_rng

__all__ = ["AdamOptimizer", "TrainingConfig", "train_language_model"]

logger = get_logger("models.training")


class AdamOptimizer:
    """Standard Adam optimizer over a list of :class:`Parameter` objects."""

    def __init__(
        self,
        parameters: List[Parameter],
        learning_rate: float = 1e-2,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        max_grad_norm: Optional[float] = 1.0,
    ) -> None:
        self.parameters = list(parameters)
        self.learning_rate = float(learning_rate)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self.max_grad_norm = max_grad_norm
        self._step = 0
        self._m = [np.zeros_like(p.value) for p in self.parameters]
        self._v = [np.zeros_like(p.value) for p in self.parameters]

    def _clip_gradients(self) -> float:
        """Clip the global gradient norm in-place; returns the pre-clip norm."""
        total = 0.0
        for parameter in self.parameters:
            total += float(np.sum(parameter.grad ** 2))
        norm = float(np.sqrt(total))
        if self.max_grad_norm is not None and norm > self.max_grad_norm > 0:
            scale = self.max_grad_norm / (norm + 1e-12)
            for parameter in self.parameters:
                parameter.grad *= scale
        return norm

    def step(self, learning_rate: Optional[float] = None) -> float:
        """Apply one Adam update; returns the global gradient norm."""
        lr = self.learning_rate if learning_rate is None else float(learning_rate)
        norm = self._clip_gradients()
        self._step += 1
        bias1 = 1.0 - self.beta1 ** self._step
        bias2 = 1.0 - self.beta2 ** self._step
        for index, parameter in enumerate(self.parameters):
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.value
            self._m[index] = self.beta1 * self._m[index] + (1.0 - self.beta1) * grad
            self._v[index] = self.beta2 * self._v[index] + (1.0 - self.beta2) * grad ** 2
            m_hat = self._m[index] / bias1
            v_hat = self._v[index] / bias2
            parameter.value -= lr * m_hat / (np.sqrt(v_hat) + self.eps)
        return norm

    def zero_grad(self) -> None:
        """Reset the gradient of every managed parameter."""
        for parameter in self.parameters:
            parameter.zero_grad()


@dataclass
class TrainingConfig:
    """Hyper-parameters of the language-model (pre-)training loop.

    Attributes
    ----------
    steps:
        Number of optimizer updates.
    batch_size:
        Sequences per update.
    sequence_length:
        Token window length of each sequence.
    learning_rate:
        Peak Adam learning rate.
    warmup_steps:
        Linear warm-up length; after warm-up the rate decays linearly to
        ``final_lr_fraction`` of the peak.
    final_lr_fraction:
        Fraction of the peak learning rate reached at the final step.
    seed:
        Seed controlling batch sampling.
    log_every:
        Emit a log line every this many steps (0 disables logging).
    """

    steps: int = 300
    batch_size: int = 8
    sequence_length: int = 33
    learning_rate: float = 8e-3
    warmup_steps: int = 20
    final_lr_fraction: float = 0.1
    seed: int = 0
    log_every: int = 0


def _learning_rate_at(step: int, config: TrainingConfig) -> float:
    """Warm-up then linear-decay learning-rate schedule."""
    if config.warmup_steps > 0 and step < config.warmup_steps:
        return config.learning_rate * (step + 1) / config.warmup_steps
    remaining = max(config.steps - config.warmup_steps, 1)
    progress = min(max(step - config.warmup_steps, 0) / remaining, 1.0)
    final = config.learning_rate * config.final_lr_fraction
    return config.learning_rate + (final - config.learning_rate) * progress


def sample_batch(
    corpus: TokenCorpus,
    batch_size: int,
    sequence_length: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample ``batch_size`` random contiguous windows from ``corpus``."""
    max_start = len(corpus) - sequence_length
    if max_start <= 0:
        raise ValueError("corpus shorter than the requested sequence length")
    starts = rng.integers(0, max_start, size=batch_size)
    return np.stack([corpus.tokens[s : s + sequence_length] for s in starts])


def train_language_model(
    model: TransformerLM,
    corpus: TokenCorpus,
    config: Optional[TrainingConfig] = None,
    callback: Optional[Callable[[int, float], None]] = None,
) -> Dict[str, List[float]]:
    """Train ``model`` on ``corpus`` with next-token cross-entropy.

    Parameters
    ----------
    model:
        Model to train in place.
    corpus:
        Training token stream.
    config:
        Training hyper-parameters; defaults to :class:`TrainingConfig`.
    callback:
        Optional ``callback(step, loss)`` hook, used by tests and examples to
        observe convergence.

    Returns
    -------
    dict
        Training history with keys ``"loss"`` and ``"grad_norm"``.
    """
    config = config or TrainingConfig()
    rng = new_rng(config.seed, "training-batches", model.config.name)
    optimizer = AdamOptimizer(list(model.parameters()), learning_rate=config.learning_rate)
    history: Dict[str, List[float]] = {"loss": [], "grad_norm": []}
    for step in range(config.steps):
        batch = sample_batch(corpus, config.batch_size, config.sequence_length, rng)
        optimizer.zero_grad()
        loss = model.loss_and_gradients(batch)
        grad_norm = optimizer.step(_learning_rate_at(step, config))
        history["loss"].append(loss)
        history["grad_norm"].append(grad_norm)
        if callback is not None:
            callback(step, loss)
        if config.log_every and (step + 1) % config.log_every == 0:
            logger.info(
                "%s step %d/%d loss=%.4f", model.config.name, step + 1, config.steps, loss
            )
    return history
