"""Serialization helpers for watermark keys, experiment results and models.

Two formats are used:

* JSON for small structured data (watermark key metadata, experiment result
  rows).  NumPy scalars and arrays are converted to plain Python types first.
* ``.npz`` archives for bulky numeric payloads (reference weights, activation
  statistics, model checkpoints).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Mapping, Union

import numpy as np

__all__ = ["save_json", "load_json", "save_npz", "load_npz", "to_jsonable"]

PathLike = Union[str, Path]


def to_jsonable(value: Any) -> Any:
    """Recursively convert ``value`` into JSON-serialisable Python objects.

    NumPy scalars become Python scalars, NumPy arrays become nested lists,
    tuples become lists, and mappings are converted key-by-key.  Keys are
    coerced to strings because JSON objects only allow string keys.
    """
    if isinstance(value, (str, bool)) or value is None:
        return value
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, Mapping):
        return {str(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [to_jsonable(v) for v in value]
    if hasattr(value, "to_dict"):
        return to_jsonable(value.to_dict())
    raise TypeError(f"cannot convert {type(value)!r} to a JSON-serialisable value")


def save_json(path: PathLike, data: Any, indent: int = 2) -> Path:
    """Write ``data`` to ``path`` as JSON, creating parent directories."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_jsonable(data), indent=indent, sort_keys=True))
    return path


def load_json(path: PathLike) -> Any:
    """Read a JSON file written by :func:`save_json`."""
    return json.loads(Path(path).read_text())


def save_npz(path: PathLike, arrays: Dict[str, np.ndarray]) -> Path:
    """Save a dictionary of arrays to a compressed ``.npz`` archive."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **arrays)
    return path


def load_npz(path: PathLike) -> Dict[str, np.ndarray]:
    """Load an ``.npz`` archive into a plain dictionary of arrays."""
    with np.load(Path(path), allow_pickle=False) as handle:
        return {key: handle[key] for key in handle.files}
