"""Serialization helpers for watermark keys, experiment results and models.

Two formats are used:

* JSON for small structured data (watermark key metadata, experiment result
  rows).  NumPy scalars and arrays are converted to plain Python types first.
* ``.npz`` archives for bulky numeric payloads (reference weights, activation
  statistics, model checkpoints).
"""

from __future__ import annotations

import json
import zipfile
from pathlib import Path
from typing import Any, Dict, Mapping, Union

import numpy as np

__all__ = [
    "save_json",
    "load_json",
    "save_npz",
    "load_npz",
    "load_npz_mmap",
    "to_jsonable",
]

PathLike = Union[str, Path]


def to_jsonable(value: Any) -> Any:
    """Recursively convert ``value`` into JSON-serialisable Python objects.

    NumPy scalars become Python scalars, NumPy arrays become nested lists,
    tuples become lists, and mappings are converted key-by-key.  Keys are
    coerced to strings because JSON objects only allow string keys.
    """
    if isinstance(value, (str, bool)) or value is None:
        return value
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, Mapping):
        return {str(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [to_jsonable(v) for v in value]
    if hasattr(value, "to_dict"):
        return to_jsonable(value.to_dict())
    raise TypeError(f"cannot convert {type(value)!r} to a JSON-serialisable value")


def save_json(path: PathLike, data: Any, indent: int = 2) -> Path:
    """Write ``data`` to ``path`` as JSON, creating parent directories."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_jsonable(data), indent=indent, sort_keys=True))
    return path


def load_json(path: PathLike) -> Any:
    """Read a JSON file written by :func:`save_json`."""
    return json.loads(Path(path).read_text())


def save_npz(
    path: PathLike, arrays: Dict[str, np.ndarray], compressed: bool = True
) -> Path:
    """Save a dictionary of arrays to an ``.npz`` archive.

    ``compressed=False`` writes ``ZIP_STORED`` members, which
    :func:`load_npz_mmap` can map directly into the page cache instead of
    decompressing into anonymous memory — the format the lazy key registry
    uses so resident key material stays evictable by the OS.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if compressed:
        np.savez_compressed(path, **arrays)
    else:
        np.savez(path, **arrays)
    return path


def load_npz(path: PathLike) -> Dict[str, np.ndarray]:
    """Load an ``.npz`` archive into a plain dictionary of arrays."""
    with np.load(Path(path), allow_pickle=False) as handle:
        return {key: handle[key] for key in handle.files}


def _mmap_member(
    path: Path, info: zipfile.ZipInfo
) -> Union[np.ndarray, None]:
    """Memory-map one ``ZIP_STORED`` ``.npy`` member of an archive, or ``None``.

    Returns ``None`` whenever the member cannot be mapped safely (compressed,
    object dtype, unfamiliar ``.npy`` header version) so the caller can fall
    back to an ordinary in-memory read.
    """
    if info.compress_type != zipfile.ZIP_STORED:
        return None
    with open(path, "rb") as handle:
        # The local file header is 30 fixed bytes followed by the (variable
        # length) file name and extra field; the raw member payload starts
        # immediately after.  ZIP_STORED payloads are byte-identical to the
        # embedded ``.npy`` file, so the array body can be mapped in place.
        handle.seek(info.header_offset)
        local = handle.read(30)
        if len(local) != 30 or local[:4] != b"PK\x03\x04":
            return None
        name_len = int.from_bytes(local[26:28], "little")
        extra_len = int.from_bytes(local[28:30], "little")
        handle.seek(info.header_offset + 30 + name_len + extra_len)
        try:
            version = np.lib.format.read_magic(handle)
            if version == (1, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_1_0(handle)
            elif version == (2, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_2_0(handle)
            else:
                return None
        except ValueError:
            return None
        if dtype.hasobject:
            return None
        offset = handle.tell()
    return np.memmap(
        path,
        dtype=dtype,
        mode="r",
        offset=offset,
        shape=shape,
        order="F" if fortran else "C",
    )


def load_npz_mmap(path: PathLike) -> Dict[str, np.ndarray]:
    """Load an ``.npz`` archive, memory-mapping members where possible.

    Uncompressed (``ZIP_STORED``) members come back as read-only
    :class:`numpy.memmap` views backed by the archive file; compressed or
    otherwise unmappable members are read into memory exactly like
    :func:`load_npz`.  Mixed archives therefore always load — mapping is an
    optimisation, never a requirement.
    """
    path = Path(path)
    out: Dict[str, np.ndarray] = {}
    fallback: list[str] = []
    with zipfile.ZipFile(path) as archive:
        for info in archive.infolist():
            name = info.filename
            if name.endswith(".npy"):
                name = name[: -len(".npy")]
            mapped = _mmap_member(path, info)
            if mapped is None:
                fallback.append(name)
            else:
                out[name] = mapped
    if fallback:
        with np.load(path, allow_pickle=False) as handle:
            for name in fallback:
                out[name] = handle[name]
    return out
