"""Deterministic random-number management.

Every stochastic component in the reproduction (model initialisation, corpus
generation, signature generation, candidate sub-sampling, attacks) receives an
explicit seed.  Reproducibility of the watermark *extraction* stage depends on
it: the watermark key stores the integer seed ``d`` and the extraction stage
must re-derive exactly the same candidate sub-sampling as the insertion stage.

The helpers here wrap :class:`numpy.random.Generator` so that

* a single integer seed always produces the same generator,
* independent sub-streams can be derived from a parent seed and a string
  label without the sub-streams being correlated, and
* the derivation is stable across processes and Python versions (it uses
  ``hashlib`` rather than Python's randomised ``hash``).
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List

import numpy as np

__all__ = ["derive_seed", "new_rng", "spawn_rngs", "SeedSequenceFactory"]

_UINT32_MASK = 0xFFFFFFFF


def derive_seed(base_seed: int, *labels: object) -> int:
    """Derive a child seed from ``base_seed`` and a sequence of labels.

    The derivation hashes the decimal representation of the base seed together
    with the ``repr`` of each label using SHA-256 and keeps the low 32 bits.
    It is deterministic across runs and platforms, and distinct labels give
    (with overwhelming probability) distinct child seeds.

    Parameters
    ----------
    base_seed:
        The parent integer seed.
    labels:
        Arbitrary hashable-by-repr labels, e.g. ``("layer", 3)`` or
        ``("signature",)``.

    Returns
    -------
    int
        A 32-bit unsigned integer suitable for seeding
        :class:`numpy.random.Generator`.
    """
    hasher = hashlib.sha256()
    hasher.update(str(int(base_seed)).encode("utf-8"))
    for label in labels:
        hasher.update(b"\x1f")
        hasher.update(repr(label).encode("utf-8"))
    digest = hasher.digest()
    return int.from_bytes(digest[:4], "little") & _UINT32_MASK


def new_rng(seed: int, *labels: object) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` for ``seed`` and ``labels``.

    When ``labels`` are given the seed is first passed through
    :func:`derive_seed`, so ``new_rng(100, "signature")`` and
    ``new_rng(100, "selection")`` are independent streams.
    """
    if labels:
        seed = derive_seed(seed, *labels)
    return np.random.default_rng(int(seed) & _UINT32_MASK)


def spawn_rngs(seed: int, labels: Iterable[object]) -> List[np.random.Generator]:
    """Create one independent generator per label.

    Parameters
    ----------
    seed:
        Parent seed.
    labels:
        Iterable of labels; one generator is returned per label, in order.
    """
    return [new_rng(seed, label) for label in labels]


class SeedSequenceFactory:
    """Factory producing reproducible child seeds for a fixed parent seed.

    The factory is handy when a component needs many seeds over its lifetime
    (for instance one per transformer layer) and wants them all tied to a
    single user-facing seed.

    Examples
    --------
    >>> factory = SeedSequenceFactory(100)
    >>> a = factory.seed_for("layer", 0)
    >>> b = factory.seed_for("layer", 1)
    >>> a != b
    True
    >>> factory.seed_for("layer", 0) == a
    True
    """

    def __init__(self, base_seed: int) -> None:
        self._base_seed = int(base_seed)

    @property
    def base_seed(self) -> int:
        """The parent seed the factory was constructed with."""
        return self._base_seed

    def seed_for(self, *labels: object) -> int:
        """Return the child seed associated with ``labels``."""
        return derive_seed(self._base_seed, *labels)

    def rng_for(self, *labels: object) -> np.random.Generator:
        """Return a generator seeded with :meth:`seed_for`."""
        return np.random.default_rng(self.seed_for(*labels))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"SeedSequenceFactory(base_seed={self._base_seed})"
