"""Plain-text table rendering used by the experiment runners.

The paper reports its evaluation as tables (Table 1 through Table 4) and
line-plot figures (Figure 2 and Figure 3).  The experiment modules produce the
underlying rows as Python data and use :class:`Table` to print them in the
same row/column arrangement as the paper so the two can be compared by eye.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence

__all__ = ["Table", "format_float", "format_percent"]


def format_float(value: float, digits: int = 2) -> str:
    """Format a float with a fixed number of decimal digits.

    ``None`` and NaN are rendered as ``"-"`` so that missing cells (for
    example GPU memory of a CPU-only method) read naturally in the output.
    """
    if value is None:
        return "-"
    try:
        if value != value:  # NaN check without importing numpy
            return "-"
    except TypeError:
        return str(value)
    return f"{value:.{digits}f}"


def format_percent(value: float, digits: int = 2) -> str:
    """Format a fraction or percentage value as ``xx.xx%``.

    Values are assumed to already be expressed in percent (0-100), matching
    how the paper reports zero-shot accuracy and WER.
    """
    if value is None:
        return "-"
    return f"{format_float(value, digits)}%"


@dataclass
class Table:
    """A simple monospaced table.

    Parameters
    ----------
    title:
        Heading printed above the table.
    columns:
        Column names.
    rows:
        Row values; each row must have the same length as ``columns``.
    """

    title: str
    columns: Sequence[str]
    rows: List[Sequence[object]] = field(default_factory=list)

    def add_row(self, row: Iterable[object]) -> None:
        """Append a row, validating its arity against the header."""
        row = list(row)
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(self.columns)} columns"
            )
        self.rows.append(row)

    def _widths(self) -> List[int]:
        widths = [len(str(c)) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(str(cell)))
        return widths

    def render(self) -> str:
        """Render the table to a string."""
        widths = self._widths()
        sep = "  "
        header = sep.join(str(c).ljust(w) for c, w in zip(self.columns, widths))
        rule = "-" * len(header)
        lines = [self.title, rule, header, rule]
        for row in self.rows:
            lines.append(sep.join(str(cell).ljust(w) for cell, w in zip(row, widths)))
        lines.append(rule)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
