"""Minimal logging facade.

All library modules obtain their logger through :func:`get_logger` so that a
single call configures the whole package consistently.  The default
configuration only attaches a ``NullHandler`` (library best practice); the
experiment runners and examples call :func:`configure` to get readable console
output.
"""

from __future__ import annotations

import logging
from typing import Optional

__all__ = ["get_logger", "configure"]

_ROOT_NAME = "repro"


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """Return a logger under the ``repro`` namespace.

    Parameters
    ----------
    name:
        Optional sub-name; ``get_logger("core.insertion")`` returns the
        logger ``repro.core.insertion``.
    """
    logger = logging.getLogger(_ROOT_NAME if not name else f"{_ROOT_NAME}.{name}")
    if not logging.getLogger(_ROOT_NAME).handlers:
        logging.getLogger(_ROOT_NAME).addHandler(logging.NullHandler())
    return logger


def configure(level: int = logging.INFO) -> None:
    """Attach a console handler to the package root logger.

    Intended for scripts (examples, experiment runners); libraries importing
    :mod:`repro` are unaffected unless they call this explicitly.
    """
    root = logging.getLogger(_ROOT_NAME)
    root.setLevel(level)
    has_stream = any(isinstance(h, logging.StreamHandler) for h in root.handlers)
    if not has_stream:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
        )
        root.addHandler(handler)
