"""Minimal logging facade with run-scoped context.

All library modules obtain their logger through :func:`get_logger` so that a
single call configures the whole package consistently.  The default
configuration only attaches a ``NullHandler`` (library best practice); the
experiment runners, the CLI and examples call :func:`configure` to get
readable console output.

Two observability affordances on top:

* **Run-id context** — :func:`run_context` scopes a run identifier (a
  gauntlet sweep, a service request) onto every log record emitted inside
  the ``with`` block, across threads spawned inside it (it rides a
  :class:`contextvars.ContextVar`).  The console format renders it as a
  ``[run-id]`` prefix; records outside any run carry ``run_id="-"``.
* **Level resolution** — :func:`resolve_level` maps the CLI's
  ``--log-level`` / the ``REPRO_LOG_LEVEL`` environment variable (names or
  numbers) onto logging levels, so every entry point agrees on the knob.
"""

from __future__ import annotations

import contextvars
import logging
import os
from contextlib import contextmanager
from typing import Iterator, Optional, Union

__all__ = [
    "get_logger",
    "configure",
    "resolve_level",
    "run_context",
    "current_run_id",
]

_ROOT_NAME = "repro"
_LOG_FORMAT = "%(asctime)s %(name)s %(levelname)s [%(run_id)s]: %(message)s"

#: The run id attached to records emitted outside any :func:`run_context`.
_NO_RUN = "-"

_run_id: contextvars.ContextVar[str] = contextvars.ContextVar("repro_run_id", default=_NO_RUN)


def current_run_id() -> Optional[str]:
    """The active run id, or ``None`` outside any :func:`run_context`."""
    value = _run_id.get()
    return None if value == _NO_RUN else value


@contextmanager
def run_context(run_id: str) -> Iterator[str]:
    """Scope ``run_id`` onto every log record emitted inside the block."""
    token = _run_id.set(str(run_id))
    try:
        yield str(run_id)
    finally:
        _run_id.reset(token)


class _RunIdFilter(logging.Filter):
    """Stamp the contextvar's run id onto each record (filters run before
    formatting, and unlike adapters they cover loggers we don't hand out)."""

    def filter(self, record: logging.LogRecord) -> bool:
        record.run_id = _run_id.get()
        return True


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """Return a logger under the ``repro`` namespace.

    Parameters
    ----------
    name:
        Optional sub-name; ``get_logger("core.insertion")`` returns the
        logger ``repro.core.insertion``.
    """
    logger = logging.getLogger(_ROOT_NAME if not name else f"{_ROOT_NAME}.{name}")
    if not logging.getLogger(_ROOT_NAME).handlers:
        logging.getLogger(_ROOT_NAME).addHandler(logging.NullHandler())
    return logger


def resolve_level(level: Union[int, str, None] = None) -> int:
    """Resolve an explicit level, then ``REPRO_LOG_LEVEL``, then ``INFO``.

    Accepts standard level names (any case) and numeric strings; unknown
    names fall back to ``INFO`` rather than crashing an entry point over a
    typo in an environment variable.
    """
    if level is None:
        level = os.environ.get("REPRO_LOG_LEVEL") or logging.INFO
    if isinstance(level, int):
        return level
    text = str(level).strip().upper()
    if text.isdigit():
        return int(text)
    resolved = logging.getLevelName(text)
    return resolved if isinstance(resolved, int) else logging.INFO


def configure(level: Union[int, str, None] = None) -> None:
    """Attach a console handler to the package root logger.

    Intended for scripts (examples, experiment runners, the CLI); libraries
    importing :mod:`repro` are unaffected unless they call this explicitly.
    ``level`` falls back to ``REPRO_LOG_LEVEL`` and then ``INFO`` (see
    :func:`resolve_level`).
    """
    root = logging.getLogger(_ROOT_NAME)
    root.setLevel(resolve_level(level))
    has_stream = any(isinstance(h, logging.StreamHandler) for h in root.handlers)
    if not has_stream:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter(_LOG_FORMAT))
        root.addHandler(handler)
    # The run-id filter rides the *handlers*: handler filters see every
    # record that propagates up from child loggers (logger filters do not).
    for handler in root.handlers:
        if not any(isinstance(f, _RunIdFilter) for f in handler.filters):
            handler.addFilter(_RunIdFilter())
