"""Shared utilities for the EmMark reproduction.

The utilities are deliberately small and dependency-free: deterministic RNG
management (:mod:`repro.utils.rng`), serialization helpers for watermark keys
and model checkpoints (:mod:`repro.utils.serialization`), plain-text table
formatting used by the experiment runners (:mod:`repro.utils.tables`) and a
minimal logging facade (:mod:`repro.utils.logging`).
"""

from repro.utils.rng import (
    SeedSequenceFactory,
    derive_seed,
    new_rng,
    spawn_rngs,
)
from repro.utils.tables import Table, format_float, format_percent
from repro.utils.serialization import (
    load_json,
    load_npz,
    save_json,
    save_npz,
)
from repro.utils.logging import get_logger

__all__ = [
    "SeedSequenceFactory",
    "derive_seed",
    "new_rng",
    "spawn_rngs",
    "Table",
    "format_float",
    "format_percent",
    "load_json",
    "load_npz",
    "save_json",
    "save_npz",
    "get_logger",
]
