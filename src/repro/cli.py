"""The ``repro`` command-line interface.

Seven sub-commands expose the watermarking engine, the verification service,
the robustness gauntlet and the repo's own static analysis from a shell:

``repro insert``
    Watermark a simulated model — with ``--owners N``, insert N co-resident
    independently keyed watermarks into **one** model on disjoint slot
    pools (collision-aware allocation), verify every owner extracts at
    100% WER, and optionally save the keys or register them into a
    registry directory.

``repro serve``
    Run the asyncio verification server in the foreground, backed by a
    persistent key registry directory.

``repro verify``
    Offline ownership check: load a registry and a saved suspect model
    (:func:`repro.service.codec.save_model` layout) and sweep the suspect
    against the registered keys directly on the engine — the same code path
    the server batches, without the HTTP hop.

``repro loadgen``
    Closed-loop load generator against a running server — or, with
    ``--fleet``, against a sharded fleet with client-side consistent-hash
    routing and a per-shard latency/throughput breakdown.

``repro audit``
    Occupancy audit: re-verify per model fingerprint that every co-resident
    key set reproduces pairwise-disjoint slot sets, either offline against a
    registry directory or remotely against a running shard / fleet router.

``repro check``
    Repo-specific static analysis: run the invariant rules in
    :mod:`repro.analysis` (seeded RNGs only, telemetry purity,
    shared-memory unlink-once, fork-safe locks, ...) over source trees,
    with a committed-baseline workflow for grandfathering.

``repro gauntlet``
    Robustness gauntlet: watermark a simulated model (any quantization
    backend, including GPTQ) and sweep the registered removal attacks
    against it in parallel (Figures 2a/2b at arbitrary grid shapes, plus
    scale tampering, outlier rewrites, structured pruning, the adaptive
    attacker and model souping), printing the per-cell table, the
    per-attack worst-case WER and the quality-vs-WER frontier.  Streaming
    execution releases each attacked model as soon as it is verified, so
    grid size is not bounded by memory.

Installed as a console script via ``pyproject.toml``; also runnable as
``python -m repro.cli`` (or ``python -m repro``) on a plain ``PYTHONPATH=src``
checkout.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.utils.logging import configure, get_logger

__all__ = ["build_parser", "main"]

logger = get_logger("cli")


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser with all sub-commands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="EmMark reproduction: watermark ownership-verification service tools.",
    )
    parser.add_argument("--log-level", default=None, metavar="LEVEL",
                        help="console log level (DEBUG, INFO, ...; default: "
                             "REPRO_LOG_LEVEL environment variable, then INFO)")
    sub = parser.add_subparsers(dest="command", required=True)

    insert = sub.add_parser("insert", help="watermark a model (multi-owner capable)")
    insert.add_argument("--model", default="opt-2.7b-sim",
                        help="simulated model name (default: opt-2.7b-sim)")
    insert.add_argument("--bits", type=int, default=4, choices=(8, 4),
                        help="quantization precision (default: 4)")
    insert.add_argument("--profile", default="smoke", choices=["smoke", "default"],
                        help="training profile of the sim model (default: smoke)")
    insert.add_argument("--quant", default="auto",
                        choices=["auto", "rtn", "smoothquant", "llm_int8", "awq", "gptq"],
                        help="quantization backend (default: auto — the paper's "
                             "pairing for the model family and precision)")
    insert.add_argument("--owners", type=int, default=1,
                        help="co-resident owners to insert; each gets a disjoint "
                             "slot pool and an independent key (default: 1)")
    insert.add_argument("--registry", metavar="DIR", default=None,
                        help="register every owner's key into this registry directory")
    insert.add_argument("--output", metavar="DIR", default=None,
                        help="save each owner's key under DIR/<owner-id>/")
    insert.add_argument("--json", action="store_true", help="emit machine-readable JSON")

    serve = sub.add_parser("serve", help="run the verification server")
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8420, help="bind port (default: 8420; 0 = ephemeral)")
    serve.add_argument("--registry", metavar="DIR", default=None,
                       help="persistent key-registry directory (default: in-memory)")
    serve.add_argument("--audit-log", metavar="PATH", default=None,
                       help="JSONL audit log of every ownership decision")
    serve.add_argument("--max-batch", type=int, default=32,
                       help="max verification requests coalesced per engine sweep")
    serve.add_argument("--max-wait-ms", type=float, default=2.0,
                       help="micro-batching window after the first queued request")
    serve.add_argument("--max-queue", type=int, default=256,
                       help="pending-request bound before returning 503")
    serve.add_argument("--rate-limit", type=float, default=None,
                       help="token-bucket sustained requests/sec (default: unlimited)")
    serve.add_argument("--burst", type=float, default=None,
                       help="token-bucket burst capacity (default: one second of rate)")
    serve.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                       help="directory for background-job cell checkpoints; jobs "
                            "resubmitted after a cancel/crash/restart resume from "
                            "their content-addressed JSONL file")
    serve.add_argument("--trace", metavar="PATH", default=None,
                       help="record engine/gauntlet trace spans while serving and "
                            "write Chrome trace_event JSON here on shutdown "
                            "(load in Perfetto / chrome://tracing)")

    verify = sub.add_parser("verify", help="offline ownership check against a registry")
    verify.add_argument("--registry", metavar="DIR", required=True,
                        help="key-registry directory (see 'repro serve --registry')")
    verify.add_argument("--suspect", metavar="DIR", required=True,
                        help="saved suspect model directory (model.json + model.npz)")
    verify.add_argument("--key-id", action="append", default=None,
                        help="check only this key id (repeatable; default: all active keys)")
    verify.add_argument("--wer-threshold", type=float, default=None,
                        help="ownership WER threshold in percent (default: 90)")
    verify.add_argument("--json", action="store_true", help="emit machine-readable JSON")

    loadgen = sub.add_parser("loadgen", help="closed-loop load test against a running server")
    loadgen.add_argument("--host", default="127.0.0.1", help="server address")
    loadgen.add_argument("--port", type=int, default=8420, help="server port")
    loadgen.add_argument("--concurrency", type=int, default=4, help="concurrent users")
    loadgen.add_argument("--duration", type=float, default=None,
                         help="run for this many seconds (mutually exclusive with --requests)")
    loadgen.add_argument("--requests", type=int, default=None,
                         help="stop after this many request attempts (completed + "
                              "rate-limited + errored)")
    loadgen.add_argument("--suspect", metavar="DIR", action="append", default=None,
                         help="saved model directory to upload as a suspect before the run "
                              "(repeatable; uploaded as suspect-0, suspect-1, …)")
    loadgen.add_argument("--suspect-id", action="append", default=None,
                         help="already-uploaded suspect id to target (repeatable)")
    loadgen.add_argument("--key-id", action="append", default=None,
                         help="restrict verification to these key ids (repeatable)")
    loadgen.add_argument("--output", metavar="PATH", default=None,
                         help="write the JSON report here as well as stdout")
    loadgen.add_argument("--fleet", metavar="HOST:PORT", action="append", default=None,
                         help="shard address (repeatable, shard-index order): drive a "
                              "sharded fleet with client-side consistent-hash routing "
                              "instead of --host/--port; requires --suspect uploads so "
                              "placement is learned, and adds a per-shard latency/"
                              "throughput breakdown to the report")

    audit = sub.add_parser("audit", help="occupancy audit: co-resident keys on disjoint slots")
    audit.add_argument("--registry", metavar="DIR", default=None,
                       help="audit this key-registry directory offline (re-derives every "
                            "model fingerprint's slot sets through the engine)")
    audit.add_argument("--host", default="127.0.0.1",
                       help="server/router address for a remote audit (default: 127.0.0.1)")
    audit.add_argument("--port", type=int, default=8420,
                       help="server/router port — a shard answers for its partition, a "
                            "fleet router merges all shards (default: 8420)")
    audit.add_argument("--json", action="store_true", help="emit machine-readable JSON")

    check = sub.add_parser("check", help="repo-invariant static analysis")
    check.add_argument("paths", nargs="*", default=["src"], metavar="PATH",
                       help="files or directories to scan (default: src)")
    check.add_argument("--rule", action="append", default=None, metavar="ID",
                       help="run only this rule id, e.g. REP002 (repeatable; "
                            "default: all rules)")
    check.add_argument("--baseline", metavar="FILE", default=None,
                       help="suppress violations recorded in this baseline file")
    check.add_argument("--write-baseline", metavar="FILE", default=None,
                       help="snapshot current findings to FILE and exit 0")
    check.add_argument("--list-rules", action="store_true",
                       help="print the rule catalog and exit")
    check.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON")

    gauntlet = sub.add_parser("gauntlet", help="parallel attack-robustness sweep")
    gauntlet.add_argument("--model", default="opt-2.7b-sim",
                          help="simulated model name (default: opt-2.7b-sim)")
    gauntlet.add_argument("--bits", type=int, default=4, choices=(8, 4),
                          help="quantization precision (default: 4)")
    gauntlet.add_argument("--profile", default="smoke", choices=["smoke", "default"],
                          help="training profile of the sim model (default: smoke)")
    gauntlet.add_argument("--quant", default="auto",
                          choices=["auto", "rtn", "smoothquant", "llm_int8", "awq", "gptq"],
                          help="quantization backend (default: auto — the paper's "
                               "pairing for the model family and precision)")
    gauntlet.add_argument("--mode", default="streaming", choices=["streaming", "batched"],
                          help="cell execution: streaming verifies and releases each "
                               "attacked model as its worker finishes (O(workers) peak "
                               "memory); batched retains the whole grid for one "
                               "verify_fleet sweep (default: streaming)")
    gauntlet.add_argument("--executor", default=None,
                          choices=["auto", "serial", "thread", "process"],
                          help="who runs the cells: serial (one worker, in-process), "
                               "thread (streaming thread pool), process (worker "
                               "processes over shared-memory model residents — "
                               "GIL-free attack stages), or auto (serial on "
                               "single-core boxes / tiny grids, process otherwise). "
                               "Overrides --mode; default: --mode's executor")
    gauntlet.add_argument("--start-method", default=None,
                          choices=["fork", "spawn", "forkserver"],
                          help="multiprocessing start method for the process "
                               "executor (default: REPRO_GAUNTLET_START_METHOD, "
                               "then the platform default)")
    gauntlet.add_argument("--attack", action="append", default=None, metavar="NAME",
                          help="attack to include (repeatable; default: every "
                               "registered attack)")
    gauntlet.add_argument("--strengths", action="append", default=None,
                          metavar="NAME=V1,V2,...",
                          help="strength sweep for one attack, e.g. "
                               "overwrite=0,100,300 (repeatable; default: the "
                               "attack's own sweep)")
    gauntlet.add_argument("--workers", type=int, default=None,
                          help="worker-pool width (default: auto)")
    gauntlet.add_argument("--seed", type=int, default=0, help="attacker RNG root seed")
    gauntlet.add_argument("--no-quality", action="store_true",
                          help="skip perplexity / zero-shot evaluation (WER only)")
    gauntlet.add_argument("--checkpoint", metavar="PATH", default=None,
                          help="append each completed cell to this JSONL checkpoint "
                               "(resumes automatically when the file already exists)")
    gauntlet.add_argument("--resume", metavar="PATH", default=None,
                          help="resume from an existing checkpoint written by a "
                               "previous --checkpoint run (must exist; implies "
                               "--checkpoint PATH)")
    gauntlet.add_argument("--json", action="store_true", help="emit machine-readable JSON")
    gauntlet.add_argument("--output", metavar="PATH", default=None,
                          help="write the JSON report here as well as stdout")
    gauntlet.add_argument("--progress", action="store_true",
                          help="live stderr progress line (cells done/total, rate, "
                               "ETA, per-attack min WER)")
    gauntlet.add_argument("--trace", metavar="PATH", default=None,
                          help="write Chrome trace_event JSON of the sweep here "
                               "(plan/score/verify/cell spans across all workers; "
                               "load in Perfetto / chrome://tracing)")
    return parser


# ----------------------------------------------------------------------
# Sub-command implementations (imports deferred so --help stays instant)
# ----------------------------------------------------------------------
def _cmd_insert(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.experiments.common import insert_multi_owner, prepare_context
    from repro.utils.tables import Table, format_float

    if args.owners < 1:
        print("error: --owners must be >= 1", file=sys.stderr)
        return 2
    quant_method = None if args.quant == "auto" else args.quant
    logger.info("preparing %s (INT%d, %s quantization, %s profile)...",
                args.model, args.bits, args.quant, args.profile)
    context = prepare_context(args.model, args.bits, profile=args.profile,
                              num_task_examples=16, quant_method=quant_method)
    result = insert_multi_owner(context, args.owners)
    # Every owner is verified independently against the one deployed model.
    fleet = context.engine.verify_fleet({"deployment": result.model}, result.keys())
    by_owner = {pair.key_id: pair for pair in fleet.pairs}

    if args.registry:
        from repro.service.registry import KeyRegistry

        registry = KeyRegistry(args.registry)
        for owner_id, key in result.keys().items():
            registry.register(key, owner=owner_id)
        logger.info("registered %d keys into %s", result.num_owners, args.registry)
    if args.output:
        for owner_id, key in result.keys().items():
            key.save(Path(args.output) / owner_id)
        logger.info("saved %d keys under %s", result.num_owners, args.output)

    rows = []
    for item in result.items:
        pair = by_owner[item.owner_id]
        rows.append({
            "owner": item.owner_id,
            "key_fingerprint": item.key.fingerprint(),
            "total_bits": item.report.total_bits,
            "wer_percent": pair.wer_percent,
            "owned": pair.owned,
            "co_residents": item.key.co_residents,
        })
    if args.json:
        print(json.dumps({
            "model": args.model,
            "bits": args.bits,
            "owners": result.num_owners,
            "occupied_slots": result.allocator.total_slots,
            "decisions": rows,
        }, indent=2, sort_keys=True))
    else:
        table = Table(
            title=(f"Multi-owner insertion: {result.num_owners} owners co-resident "
                   f"in {args.model} (INT{args.bits})"),
            columns=["Owner", "Key", "Bits", "WER (%)", "Owned", "Co-residents"],
        )
        for row in rows:
            table.add_row([
                row["owner"],
                row["key_fingerprint"],
                row["total_bits"],
                format_float(row["wer_percent"]),
                "yes" if row["owned"] else "no",
                ",".join(row["co_residents"]) or "-",
            ])
        print(table.render())
        print(f"  {result.allocator.total_slots} slots allocated across "
              f"{len(result.allocator.snapshot())} layers; "
              f"{result.wall_clock_seconds:.3f}s wall clock")
    return 0 if all(row["owned"] and row["wer_percent"] == 100.0 for row in rows) else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.audit import AuditLog
    from repro.service.registry import KeyRegistry
    from repro.service.server import ServiceConfig, VerificationServer

    try:
        config = ServiceConfig(
            host=args.host,
            port=args.port,
            max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms,
            max_queue=args.max_queue,
            rate_limit_per_sec=args.rate_limit,
            rate_limit_burst=args.burst,
            checkpoint_dir=args.checkpoint_dir,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    registry = KeyRegistry(args.registry)
    server = VerificationServer(
        registry=registry,
        audit=AuditLog(args.audit_log),
        config=config,
    )
    collector = None
    if args.trace:
        from repro.obs.trace import TraceCollector, set_collector

        collector = TraceCollector()
        set_collector(collector)

    async def run() -> None:
        await server.start()
        print(f"verification server listening on http://{args.host}:{server.port}")
        print(f"registry: {args.registry or '(in-memory)'} — {len(registry)} keys")
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        if collector is not None:
            from repro.obs.trace import set_collector

            set_collector(None)
            collector.save(args.trace)
            print(f"[trace written to {args.trace}]", file=sys.stderr)
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.engine.engine import WatermarkEngine
    from repro.engine.reports import DEFAULT_OWNERSHIP_THRESHOLD
    from repro.service.codec import load_model
    from repro.service.registry import KeyRegistry, RegistryError

    registry = KeyRegistry(args.registry)
    suspect = load_model(args.suspect)
    try:
        keys = registry.active_keys(args.key_id)
    except RegistryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not keys:
        print("error: registry holds no active keys", file=sys.stderr)
        return 2
    threshold = args.wer_threshold if args.wer_threshold is not None else DEFAULT_OWNERSHIP_THRESHOLD
    report = WatermarkEngine().verify_fleet(
        {"suspect": suspect}, keys, wer_threshold=threshold
    )
    if args.json:
        print(json.dumps({"decisions": [pair.to_dict() for pair in report.pairs]}, indent=2))
    else:
        print(report.summary())
    return 0 if report.owned_pairs() else 1


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.service.client import VerificationClient
    from repro.service.codec import load_model
    from repro.service.loadgen import LoadConfig, RequestTemplate, run_load

    if (args.duration is None) == (args.requests is None):
        print("error: set exactly one of --duration / --requests", file=sys.stderr)
        return 2
    key_ids = tuple(args.key_id) if args.key_id else None
    templates: List[RequestTemplate] = []
    if args.fleet:
        # Fleet mode: upload through the consistent-hash client so every
        # suspect's owning shard is known, then drive the shards directly.
        if args.suspect_id:
            print("error: --suspect-id needs a known shard; use --suspect uploads "
                  "with --fleet", file=sys.stderr)
            return 2
        if not args.suspect:
            print("error: --fleet requires --suspect uploads", file=sys.stderr)
            return 2
        from repro.service.fleet import FleetClient

        with FleetClient(args.fleet) as fleet_client:
            for index, directory in enumerate(args.suspect):
                uploaded = fleet_client.upload_suspect(load_model(directory), f"suspect-{index}")
                sid = uploaded["suspect_id"]
                templates.append(RequestTemplate(
                    sid, key_ids=key_ids, label=sid,
                    shard=fleet_client.labels.index(uploaded["shard"]),
                ))
    else:
        suspect_ids: List[str] = list(args.suspect_id or [])
        if args.suspect:
            client = VerificationClient(args.host, args.port)
            try:
                for index, directory in enumerate(args.suspect):
                    uploaded = client.upload_suspect(load_model(directory), f"suspect-{index}")
                    suspect_ids.append(uploaded["suspect_id"])
            finally:
                client.close()
        templates = [RequestTemplate(sid, key_ids=key_ids, label=sid) for sid in suspect_ids]
    if not templates:
        print("error: no suspects (use --suspect and/or --suspect-id)", file=sys.stderr)
        return 2
    report = run_load(
        LoadConfig(
            host=args.host,
            port=args.port,
            concurrency=args.concurrency,
            duration_seconds=args.duration,
            total_requests=args.requests,
            templates=templates,
            collect_decisions=False,
            fleet=list(args.fleet) if args.fleet else None,
        )
    )
    print(report.summary())
    payload = json.dumps(report.to_dict(), indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
        print(f"[written to {args.output}]")
    else:
        print(payload)
    return 0 if report.completed else 1


def _cmd_audit(args: argparse.Namespace) -> int:
    if args.registry:
        from repro.engine import EngineConfig, WatermarkEngine
        from repro.service.fleet import occupancy_audit
        from repro.service.registry import KeyRegistry

        registry = KeyRegistry(args.registry)
        report = occupancy_audit(registry, WatermarkEngine(EngineConfig()))
        payload = report.to_dict()
    else:
        # A shard answers for its own partition; the fleet router's alias
        # merges every shard into one fleet-wide report.
        from repro.service.client import VerificationClient

        client = VerificationClient(args.host, args.port)
        try:
            payload = client._request("GET", "/v1/audit")["audit"]
        finally:
            client.close()
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        status = "DISJOINT" if payload["ok"] else "COLLISION"
        print(f"occupancy audit: {status} — {payload['models']} model fingerprint(s), "
              f"{payload['collisions']} collision(s), digest {payload['digest']}")
        for verdict in payload.get("verdicts", []):
            if verdict.get("disjoint"):
                continue
            collision = verdict.get("collision") or {}
            print(f"  COLLISION {verdict['model_fingerprint']}: layer "
                  f"{collision.get('layer')} indices {collision.get('indices')} "
                  f"already held by {collision.get('holder')}")
    return 0 if payload["ok"] else 1


def _parse_strengths(raw: Optional[List[str]]) -> dict:
    """Parse repeated ``NAME=V1,V2,...`` strength overrides."""
    strengths = {}
    for item in raw or []:
        name, sep, values = item.partition("=")
        if not sep or not values:
            raise ValueError(f"--strengths expects NAME=V1,V2,... (got {item!r})")
        try:
            strengths[name.strip()] = tuple(float(v) for v in values.split(","))
        except ValueError as exc:
            raise ValueError(f"non-numeric strength in {item!r}") from exc
    return strengths


def _cmd_check(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis import Baseline, all_rules, run_checks

    rules = all_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.rule_id}  {rule.name:22s} {rule.description}")
        return 0
    if args.rule:
        known = {rule.rule_id for rule in rules}
        unknown = sorted(set(args.rule) - known)
        if unknown:
            print(f"error: unknown rule ids {unknown}; known: {sorted(known)}",
                  file=sys.stderr)
            return 2
        rules = [rule for rule in rules if rule.rule_id in set(args.rule)]
    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"error: no such path(s): {missing}", file=sys.stderr)
        return 2
    baseline = None
    if args.baseline and not args.write_baseline:
        try:
            baseline = Baseline.load(Path(args.baseline))
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    result = run_checks(args.paths, rules=rules, baseline=baseline)
    if args.write_baseline:
        Baseline.from_violations(result.violations).write(Path(args.write_baseline))
        print(f"baseline with {len(result.violations)} finding(s) written to "
              f"{args.write_baseline}")
        return 0
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        print(result.render())
    return 0 if result.ok else 1


def _cmd_gauntlet(args: argparse.Namespace) -> int:
    import contextlib

    from repro.core.emmark import EmMark
    from repro.experiments.common import prepare_context
    from repro.obs.trace import TraceCollector, tracing
    from repro.robustness import (
        GauntletSubject,
        available_attacks,
        build_attack,
        run_gauntlet,
    )
    from repro.utils.logging import run_context

    try:
        strengths = _parse_strengths(args.strengths)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    attack_names = args.attack or available_attacks()
    unknown = sorted(set(attack_names) - set(available_attacks()))
    if unknown:
        print(f"error: unknown attacks {unknown}; available: {available_attacks()}",
              file=sys.stderr)
        return 2
    duplicates = sorted({name for name in attack_names if attack_names.count(name) > 1})
    if duplicates:
        print(f"error: duplicate --attack flags: {duplicates}", file=sys.stderr)
        return 2
    # Validate the grid before the expensive model preparation: a typo in
    # --strengths must not cost a training + insertion run.
    orphaned = sorted(set(strengths) - set(attack_names))
    if orphaned:
        print(f"error: --strengths given for attacks not in the grid: {orphaned}",
              file=sys.stderr)
        return 2
    checkpoint = args.checkpoint
    if args.resume:
        if args.checkpoint and args.checkpoint != args.resume:
            print("error: --resume and --checkpoint name different files; pass one",
                  file=sys.stderr)
            return 2
        if not Path(args.resume).exists():
            print(f"error: --resume checkpoint {args.resume} does not exist "
                  "(use --checkpoint to start a new one)", file=sys.stderr)
            return 2
        checkpoint = args.resume
    # --executor maps onto (mode, max_workers); --mode keeps addressing the
    # in-process pipelines directly (streaming vs the batched reference).
    mode, workers = args.mode, args.workers
    if args.executor == "serial":
        mode, workers = "streaming", 1
    elif args.executor == "thread":
        mode = "streaming"
    elif args.executor == "process":
        mode = "process"
    elif args.executor == "auto":
        mode = "auto"
    quant_method = None if args.quant == "auto" else args.quant
    logger.info("preparing watermarked %s (INT%d, %s quantization, %s profile)...",
                args.model, args.bits, args.quant, args.profile)
    context = prepare_context(args.model, args.bits, profile=args.profile,
                              num_task_examples=16, quant_method=quant_method)
    emmark = EmMark(context.emmark_config, engine=context.engine)
    watermarked, key, _ = emmark.insert_with_key(
        context.fresh_quantized(), context.activations
    )
    attacks = [
        build_attack(
            name,
            calibration_corpus=context.harness.calibration_corpus,
            # True two-clone scenarios watermark a second clone of the same
            # virgin base with owner-grade activation statistics.
            base_model=context.quantized,
            base_activations=context.activations,
        )
        for name in attack_names
    ]
    collector = TraceCollector() if args.trace else None
    with run_context(f"gauntlet-{args.model}"):
        with tracing(collector) if collector is not None else contextlib.nullcontext():
            report = run_gauntlet(
                {args.model: GauntletSubject(
                    model=watermarked, key=key, harness=context.harness)},
                attacks,
                strengths=strengths or None,
                checkpoint=checkpoint,
                engine=context.engine,
                max_workers=workers,
                seed=args.seed,
                evaluate_quality=not args.no_quality,
                mode=mode,
                start_method=args.start_method,
                progress=args.progress,
            )
    if collector is not None:
        collector.save(args.trace)
        print(f"[trace written to {args.trace}]", file=sys.stderr)
    payload = report.to_json()
    if args.json:
        print(payload)
    else:
        print(report.render())
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
        print(f"[written to {args.output}]", file=sys.stderr)
    # Exit 0 while the watermark's worst case stays above the ownership
    # threshold everywhere; 1 when some attack in the grid removed it.
    return 0 if all(cell.owned for cell in report.cells) else 1


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (returns the process exit code)."""
    args = build_parser().parse_args(argv)
    # One logging setup for every sub-command: --log-level, then the
    # REPRO_LOG_LEVEL environment variable, then INFO (see resolve_level).
    configure(args.log_level)
    if args.command == "insert":
        return _cmd_insert(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "verify":
        return _cmd_verify(args)
    if args.command == "loadgen":
        return _cmd_loadgen(args)
    if args.command == "audit":
        return _cmd_audit(args)
    if args.command == "gauntlet":
        return _cmd_gauntlet(args)
    if args.command == "check":
        return _cmd_check(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
