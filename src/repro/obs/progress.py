"""Single-line live progress for long grid sweeps (gauntlet executors).

The renderer owns one carriage-return-rewritten stderr line showing cells
done/total, throughput, ETA, and the running per-attack min-WER — the
numbers an operator actually watches during a 10k-cell sweep.  Updates are
throttled (default 10 Hz) so process-pool completions arriving in bursts
don't flood the terminal, and every write is guarded by a lock so thread
and process executors can report from completion callbacks without
interleaving.

The renderer is I/O only: it never touches the results it is told about,
so decision digests are identical with progress on or off.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Callable, Dict, Optional, TextIO

__all__ = ["ProgressRenderer"]


def _format_eta(seconds: float) -> str:
    if seconds < 0 or seconds != seconds or seconds == float("inf"):
        return "--"
    seconds = int(round(seconds))
    if seconds < 60:
        return f"{seconds}s"
    minutes, secs = divmod(seconds, 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


class ProgressRenderer:
    """Throttled ``\\r``-rewritten progress line for a fixed-size grid.

    Parameters
    ----------
    total:
        Number of cells in the sweep.
    stream:
        Target stream (default ``sys.stderr`` read at render time, so test
        monkeypatching works).
    min_interval:
        Minimum seconds between repaints; the first and final updates
        always render.
    clock:
        Injectable monotonic clock for tests.
    """

    def __init__(
        self,
        total: int,
        stream: Optional[TextIO] = None,
        min_interval: float = 0.1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.total = max(int(total), 0)
        self._stream = stream
        self._min_interval = min_interval
        self._clock = clock
        self._lock = threading.Lock()
        self._done = 0
        self._min_wer: Dict[str, float] = {}
        self._started_at: Optional[float] = None
        self._last_render = float("-inf")
        self._rendered_any = False

    # ------------------------------------------------------------------
    def _out(self) -> TextIO:
        return self._stream if self._stream is not None else sys.stderr

    def start(self) -> None:
        with self._lock:
            self._started_at = self._clock()

    def update(self, attack: Optional[str] = None, wer: Optional[float] = None) -> None:
        """Record one completed cell and repaint if the throttle allows."""
        with self._lock:
            if self._started_at is None:
                self._started_at = self._clock()
            self._done += 1
            if attack is not None and wer is not None:
                current = self._min_wer.get(attack)
                if current is None or wer < current:
                    self._min_wer[attack] = wer
            now = self._clock()
            final = self._done >= self.total
            if not final and now - self._last_render < self._min_interval:
                return
            self._last_render = now
            line = self._compose(now)
        self._write(line)

    def finish(self) -> None:
        """Repaint one last time and terminate the line with a newline."""
        with self._lock:
            if not self._rendered_any:
                return
            line = self._compose(self._clock())
        self._write(line)
        out = self._out()
        out.write("\n")
        out.flush()

    # ------------------------------------------------------------------
    def _compose(self, now: float) -> str:
        self._rendered_any = True
        started = self._started_at if self._started_at is not None else now
        elapsed = max(now - started, 1e-9)
        rate = self._done / elapsed
        if self._done and self.total:
            remaining = (self.total - self._done) / rate if rate > 0 else float("inf")
            eta = _format_eta(remaining)
        else:
            eta = "--"
        pct = (100.0 * self._done / self.total) if self.total else 0.0
        parts = [
            f"[{self._done}/{self.total}]",
            f"{pct:3.0f}%",
            f"{rate:.1f} cells/s",
            f"ETA {eta}",
        ]
        if self._min_wer:
            wer_bits = " ".join(
                f"{attack}:{wer:.1f}" for attack, wer in sorted(self._min_wer.items())
            )
            parts.append(f"min WER {wer_bits}")
        return " | ".join(parts)

    def _write(self, line: str) -> None:
        out = self._out()
        # Pad to clear leftovers from a longer previous paint.
        out.write("\r" + line.ljust(79)[:200])
        out.flush()
