"""Zero-dependency observability: metrics, trace spans, live progress.

Three pillars, all stdlib-only and safe to leave enabled in production:

``repro.obs.metrics``
    A thread-safe :class:`MetricsRegistry` of counters, gauges, and
    fixed-bucket histograms with Prometheus text exposition — the backing
    store for the service's ``GET /metrics`` endpoint.

``repro.obs.trace``
    A :func:`span` context manager producing structured spans (wall + CPU
    time, parent links, attributes) that export as Chrome ``trace_event``
    JSON loadable in ``chrome://tracing`` / Perfetto.  Disabled spans are
    near-free; instrumentation never perturbs decisions.

``repro.obs.progress``
    A throttled, single-line stderr progress renderer (done/total, ETA,
    cells/sec, per-attack min-WER) shared by the gauntlet's serial, thread,
    and process executors.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Sample,
)
from repro.obs.progress import ProgressRenderer
from repro.obs.trace import (
    SpanRecord,
    TraceCollector,
    get_collector,
    set_collector,
    span,
    tracing,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Sample",
    "ProgressRenderer",
    "SpanRecord",
    "TraceCollector",
    "get_collector",
    "set_collector",
    "span",
    "tracing",
]
