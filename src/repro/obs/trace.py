"""Structured trace spans exportable as Chrome ``trace_event`` JSON.

A :func:`span` wraps a region of work and records wall time, CPU (thread)
time, parent/child links, and free-form attributes.  When no collector is
installed the context manager is a cheap no-op, so instrumentation can stay
in place permanently — the hard invariant is that spans only *measure*;
they never touch RNG state or alter any computed value.

Collectors are explicit objects (:class:`TraceCollector`) so a gauntlet
worker process can record locally and ship its spans back to the parent
inside ``CellOutcome``; :meth:`TraceCollector.extend` merges them.  The
export (:meth:`TraceCollector.to_chrome`) uses absolute wall-clock
microseconds for ``ts``, so spans from different processes on the same host
line up on one Perfetto timeline, grouped by pid/tid rows.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional

__all__ = [
    "SpanRecord",
    "TraceCollector",
    "get_collector",
    "set_collector",
    "span",
    "tracing",
]


@dataclass
class SpanRecord:
    """One completed span; picklable so workers can ship spans to the parent."""

    name: str
    start_us: float  # absolute wall clock, microseconds since the epoch
    duration_us: float
    cpu_us: float
    pid: int
    tid: int
    span_id: int
    parent_id: Optional[int] = None
    attrs: Dict[str, object] = field(default_factory=dict)


class TraceCollector:
    """Thread-safe sink for completed spans with Chrome-trace export."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: List[SpanRecord] = []
        self._ids = itertools.count(1)

    def next_id(self) -> int:
        return next(self._ids)

    def add(self, record: SpanRecord) -> None:
        with self._lock:
            self._records.append(record)

    def extend(self, records: Iterable[SpanRecord]) -> None:
        """Merge spans recorded elsewhere (e.g. a worker process)."""
        with self._lock:
            self._records.extend(records)

    @property
    def records(self) -> List[SpanRecord]:
        with self._lock:
            return list(self._records)

    def drain(self) -> List[SpanRecord]:
        """Pop and return every recorded span (worker → parent shipping)."""
        with self._lock:
            records, self._records = self._records, []
            return records

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def reset_lock(self) -> None:
        """Fork hygiene: replace the lock in a freshly forked child."""
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_chrome(self) -> Dict[str, object]:
        """The ``trace_event`` JSON object Perfetto / chrome://tracing load.

        Every span becomes one complete (``"ph": "X"``) event; ``args``
        carries the span attributes plus CPU time so the busy/blocked split
        is inspectable per slice.
        """
        events: List[Dict[str, object]] = []
        # Sorted on the typed record (not the heterogeneous event dict), so
        # the ordering key is a plain float.
        for record in sorted(self.records, key=lambda r: r.start_us):
            args: Dict[str, object] = dict(record.attrs)
            args["cpu_us"] = round(record.cpu_us, 1)
            if record.parent_id is not None:
                args["parent_span"] = record.parent_id
            events.append(
                {
                    "name": record.name,
                    "cat": "repro",
                    "ph": "X",
                    "ts": record.start_us,
                    "dur": record.duration_us,
                    "pid": record.pid,
                    "tid": record.tid,
                    "args": args,
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome(), handle, indent=1)


# ----------------------------------------------------------------------
# Active collector + per-thread span stack
# ----------------------------------------------------------------------
_active: Optional[TraceCollector] = None
_stack = threading.local()


def set_collector(collector: Optional[TraceCollector]) -> None:
    """Install (or clear, with ``None``) the process-wide collector."""
    global _active
    _active = collector


def get_collector() -> Optional[TraceCollector]:
    return _active


@contextmanager
def tracing(collector: TraceCollector) -> Iterator[TraceCollector]:
    """Scoped installation: spans inside the block record into ``collector``."""
    previous = get_collector()
    set_collector(collector)
    try:
        yield collector
    finally:
        set_collector(previous)


def _parent_stack() -> List[int]:
    stack = getattr(_stack, "ids", None)
    if stack is None:
        stack = _stack.ids = []
    return stack


@contextmanager
def span(name: str, **attrs: object) -> Iterator[Optional[SpanRecord]]:
    """Record a span around the block — a no-op when tracing is disabled.

    Yields the in-flight :class:`SpanRecord` (or ``None`` when disabled) so
    callers may attach late attributes via ``record.attrs[...] = ...``.
    """
    collector = _active
    if collector is None:
        yield None
        return
    stack = _parent_stack()
    record = SpanRecord(
        name=name,
        start_us=time.time() * 1e6,
        duration_us=0.0,
        cpu_us=0.0,
        pid=os.getpid(),
        tid=threading.get_ident(),
        span_id=collector.next_id(),
        parent_id=stack[-1] if stack else None,
        attrs=dict(attrs),
    )
    start_wall = time.perf_counter()
    start_cpu = time.thread_time()
    stack.append(record.span_id)
    try:
        yield record
    finally:
        stack.pop()
        record.duration_us = (time.perf_counter() - start_wall) * 1e6
        record.cpu_us = (time.thread_time() - start_cpu) * 1e6
        collector.add(record)


def _reset_after_fork() -> None:
    # A forked worker must not inherit the parent's collector: its lock may
    # have been captured mid-acquire by another parent thread, and spans
    # appended in the child would silently vanish.  Workers that want spans
    # install their own collector (see robustness/procpool.py).
    global _active, _stack
    _active = None
    _stack = threading.local()


if hasattr(os, "register_at_fork"):  # pragma: no branch
    os.register_at_fork(after_in_child=_reset_after_fork)
