"""Thread-safe metrics instruments with Prometheus text exposition.

The registry is deliberately tiny: three instrument kinds (counter, gauge,
fixed-bucket histogram), labels as frozen ``(key, value)`` tuples, and a
pull hook (:meth:`MetricsRegistry.register_collector`) for sources that
already keep their own counters — the plan cache, the audit log, the
dispatcher queue — so exposition reads their live values without double
bookkeeping.

Exposition follows the Prometheus text format (version 0.0.4): one
``# HELP`` / ``# TYPE`` header per family, one sample line per label set,
histograms expanded into cumulative ``_bucket{le=...}`` series plus
``_sum`` / ``_count``.
"""

from __future__ import annotations

import math
import re
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Sample",
    "DEFAULT_LATENCY_BUCKETS",
]

LabelSet = Tuple[Tuple[str, str], ...]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram bounds for second-valued latencies: 250 µs .. 30 s.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


def _labelset(labels: Optional[Mapping[str, str]]) -> LabelSet:
    if not labels:
        return ()
    items = tuple(sorted((str(k), str(v)) for k, v in labels.items()))
    for key, _ in items:
        if not _LABEL_RE.match(key):
            raise ValueError(f"invalid label name {key!r}")
    return items


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r"\"")


def _format_labels(labels: LabelSet) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in labels)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


@dataclass(frozen=True)
class Sample:
    """One exposition sample from a pull-based collector."""

    name: str
    value: float
    kind: str = "gauge"  # "counter" | "gauge"
    help: str = ""
    labels: Mapping[str, str] = field(default_factory=dict)


class _Instrument:
    """Base: a named, labelled instrument guarded by its own lock."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labels: Optional[Mapping[str, str]] = None) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self.label_set: LabelSet = _labelset(labels)
        self._lock = threading.Lock()

    def reset_lock(self) -> None:
        """Replace the internal lock (fork hygiene: a forked child may
        inherit a lock captured mid-acquire by another thread)."""
        self._lock = threading.Lock()

    # Each instrument knows how to render itself as exposition lines.
    def exposition_lines(self) -> List[str]:  # pragma: no cover - abstract
        raise NotImplementedError


class Counter(_Instrument):
    """Monotonically increasing counter."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labels: Optional[Mapping[str, str]] = None) -> None:
        super().__init__(name, help, labels)
        self._value = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def exposition_lines(self) -> List[str]:
        return [f"{self.name}{_format_labels(self.label_set)} {_format_value(self.value)}"]


class Gauge(_Instrument):
    """A value that can go up and down."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labels: Optional[Mapping[str, str]] = None) -> None:
        super().__init__(name, help, labels)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def exposition_lines(self) -> List[str]:
        return [f"{self.name}{_format_labels(self.label_set)} {_format_value(self.value)}"]


class Histogram(_Instrument):
    """Fixed-bucket histogram with interpolated percentile summaries."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help, labels)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot: +Inf overflow
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        with self._lock:
            self._sum += value
            self._count += 1
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    self._counts[i] += 1
                    return
            self._counts[-1] += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0..1) by linear interpolation
        within the bucket that contains its rank."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        with self._lock:
            total = self._count
            if total == 0:
                return 0.0
            rank = q * total
            cumulative = 0
            lower = 0.0
            for i, bound in enumerate(self.bounds):
                bucket_n = self._counts[i]
                if cumulative + bucket_n >= rank and bucket_n > 0:
                    within = (rank - cumulative) / bucket_n
                    return lower + (bound - lower) * within
                cumulative += bucket_n
                lower = bound
            # Rank falls in the overflow bucket: clamp to the last bound.
            return self.bounds[-1]

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.sum,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }

    def exposition_lines(self) -> List[str]:
        with self._lock:
            counts = list(self._counts)
            total = self._count
            value_sum = self._sum
        lines = []
        cumulative = 0
        for i, bound in enumerate(self.bounds):
            cumulative += counts[i]
            labels = self.label_set + (("le", _format_value(bound)),)
            lines.append(f"{self.name}_bucket{_format_labels(labels)} {cumulative}")
        labels = self.label_set + (("le", "+Inf"),)
        lines.append(f"{self.name}_bucket{_format_labels(labels)} {total}")
        lines.append(f"{self.name}_sum{_format_labels(self.label_set)} {_format_value(value_sum)}")
        lines.append(f"{self.name}_count{_format_labels(self.label_set)} {total}")
        return lines


class MetricsRegistry:
    """Get-or-create registry of instruments plus pull-based collectors.

    Instruments are keyed by ``(name, label set)``; a family (one name,
    many label sets) must keep one kind and one help string.  Collectors
    are zero-argument callables returning :class:`Sample` iterables,
    evaluated at exposition/snapshot time — use them for sources that
    already maintain counters of their own.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[Tuple[str, LabelSet], _Instrument] = {}
        self._families: Dict[str, Tuple[str, str]] = {}  # name -> (kind, help)
        self._collectors: List[Callable[[], Iterable[Sample]]] = []

    # ------------------------------------------------------------------
    # Instrument creation
    # ------------------------------------------------------------------
    def _get_or_create(
        self,
        cls,
        name: str,
        help: str,
        labels: Optional[Mapping[str, str]],
        **kwargs,
    ):
        key = (name, _labelset(labels))
        with self._lock:
            existing = self._instruments.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                return existing
            family = self._families.get(name)
            if family is not None and family[0] != cls.kind:
                raise ValueError(
                    f"metric family {name!r} already registered as {family[0]}"
                )
            instrument = cls(name, help or (family[1] if family else ""), labels, **kwargs)
            self._instruments[key] = instrument
            if family is None:
                self._families[name] = (cls.kind, help)
            return instrument

    def counter(
        self, name: str, help: str = "", labels: Optional[Mapping[str, str]] = None
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(
        self, name: str, help: str = "", labels: Optional[Mapping[str, str]] = None
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels, buckets=buckets)

    def register_collector(self, collector: Callable[[], Iterable[Sample]]) -> None:
        """Register a pull source evaluated at render/snapshot time."""
        with self._lock:
            self._collectors.append(collector)

    def reset_locks(self) -> None:
        """Fork hygiene: replace every lock in the registry and its
        instruments (mirrors ``PlanCache.reset_lock``)."""
        self._lock = threading.Lock()
        for instrument in list(self._instruments.values()):
            instrument.reset_lock()

    # ------------------------------------------------------------------
    # Exposition
    # ------------------------------------------------------------------
    def _collector_samples(self) -> List[Sample]:
        with self._lock:
            collectors = list(self._collectors)
        samples: List[Sample] = []
        for collector in collectors:
            samples.extend(collector())
        return samples

    def render(self) -> str:
        """Prometheus text exposition (version 0.0.4) of every family."""
        with self._lock:
            instruments = list(self._instruments.values())
            families = dict(self._families)
        # Group direct instruments by family name for single HELP/TYPE headers.
        by_name: Dict[str, List[_Instrument]] = {}
        for instrument in instruments:
            by_name.setdefault(instrument.name, []).append(instrument)
        lines: List[str] = []
        for name in sorted(by_name):
            kind, help = families.get(name, (by_name[name][0].kind, ""))
            if help:
                lines.append(f"# HELP {name} {help}")
            lines.append(f"# TYPE {name} {kind}")
            for instrument in sorted(by_name[name], key=lambda m: m.label_set):
                lines.extend(instrument.exposition_lines())
        # Pull-based samples, grouped the same way.
        pulled: Dict[str, List[Sample]] = {}
        for sample in self._collector_samples():
            pulled.setdefault(sample.name, []).append(sample)
        for name in sorted(pulled):
            if name in by_name:
                raise ValueError(
                    f"collector sample {name!r} collides with a registered instrument"
                )
            group = pulled[name]
            if group[0].help:
                lines.append(f"# HELP {name} {group[0].help}")
            lines.append(f"# TYPE {name} {group[0].kind}")
            for sample in group:
                labels = _labelset(sample.labels)
                lines.append(
                    f"{name}{_format_labels(labels)} {_format_value(sample.value)}"
                )
        return "\n".join(lines) + "\n"

    def snapshot(self) -> Dict[str, object]:
        """JSON-friendly dump: counters/gauges by name, histogram summaries."""
        with self._lock:
            instruments = list(self._instruments.values())
        # Typed per-kind maps (rather than one Dict[str, object] indexed
        # twice) so the assignments below type-check.
        counters: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, object] = {}

        def _key(instrument: _Instrument) -> str:
            if not instrument.label_set:
                return instrument.name
            return instrument.name + _format_labels(instrument.label_set)

        for instrument in instruments:
            if isinstance(instrument, Counter):
                counters[_key(instrument)] = instrument.value
            elif isinstance(instrument, Gauge):
                gauges[_key(instrument)] = instrument.value
            elif isinstance(instrument, Histogram):
                histograms[_key(instrument)] = instrument.summary()
        for sample in self._collector_samples():
            bucket = counters if sample.kind == "counter" else gauges
            bucket[sample.name + _format_labels(_labelset(sample.labels))] = sample.value
        return {"counters": counters, "gauges": gauges, "histograms": histograms}
