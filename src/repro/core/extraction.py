"""Watermark extraction and ownership proof (Section 4.2).

Given a suspect deployed model and the owner's
:class:`~repro.core.keys.WatermarkKey`, extraction

1. reproduces the watermark weight locations ``L`` by re-running the scoring
   and seeded sub-sampling on the key's reference weights and full-precision
   activations,
2. reads the suspect model's integer weights at ``L`` and forms
   ``ΔW[L] = W'[L] − W[L]`` (Equation 6),
3. compares ``ΔW[L]`` with the inserted signature ``B`` and reports the
   watermark extraction rate ``WER = 100 · |B|' / |B|`` (Equation 7), and
4. converts the match count into the false-claim probability of Equation 8 so
   the owner can quote the statistical strength of the ownership claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core.insertion import select_layer_locations
from repro.core.keys import WatermarkKey
from repro.core.strength import false_claim_probability
from repro.quant.base import QuantizationGrid, QuantizedLinear, QuantizedModel
from repro.utils.logging import get_logger

__all__ = ["ExtractionResult", "extract_watermark", "verify_ownership", "reproduce_locations"]

logger = get_logger("core.extraction")

#: WER (in percent) above which :func:`verify_ownership` asserts ownership.
DEFAULT_OWNERSHIP_THRESHOLD = 90.0


@dataclass
class ExtractionResult:
    """Outcome of one watermark extraction.

    Attributes
    ----------
    total_bits:
        Signature length ``|B|``.
    matched_bits:
        Number of signature bits recovered exactly (``|B|'``).
    wer_percent:
        Watermark extraction rate ``100 · |B|' / |B|`` (Equation 7).
    per_layer_wer:
        Extraction rate per quantization layer (diagnostics; the attacks
        rarely damage layers uniformly).
    false_claim_probability:
        Probability that an unrelated model would match at least
        ``matched_bits`` bits by chance (Equation 8).
    locations:
        The reproduced watermark locations per layer (flattened indices).
    """

    total_bits: int
    matched_bits: int
    wer_percent: float
    per_layer_wer: Dict[str, float] = field(default_factory=dict)
    false_claim_probability: float = 1.0
    locations: Dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def fully_extracted(self) -> bool:
        """True when every signature bit was recovered."""
        return self.matched_bits == self.total_bits

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"WER {self.wer_percent:.2f}% ({self.matched_bits}/{self.total_bits} bits), "
            f"false-claim probability {self.false_claim_probability:.3e}"
        )


def reproduce_locations(key: WatermarkKey) -> Dict[str, np.ndarray]:
    """Recompute the watermark locations ``L`` from the key alone.

    The key carries the original quantized weights ``W``, the full-precision
    activations ``A_f``, the coefficients α/β and the seed ``d`` — everything
    the scoring + sub-sampling pipeline consumed during insertion — so the
    reproduced locations are identical to the inserted ones.
    """
    grid = QuantizationGrid(key.bits if key.bits else 8)
    locations: Dict[str, np.ndarray] = {}
    for name in key.layer_names:
        reference = key.reference_weights[name]
        outliers = key.outlier_columns.get(name)
        outlier_weight = (
            np.zeros((reference.shape[0], outliers.size)) if outliers is not None else None
        )
        layer_view = QuantizedLinear(
            name=name,
            weight_int=reference,
            scale=np.ones((reference.shape[0], 1)),
            grid=grid,
            outlier_columns=outliers,
            outlier_weight=outlier_weight,
        )
        channel_activations = key.activations.channel_saliency(name)
        locations[name] = select_layer_locations(
            layer_view, channel_activations, key.config.bits_per_layer, key.config
        )
    return locations


def extract_watermark(
    suspect: QuantizedModel,
    key: WatermarkKey,
    strict_layout: bool = True,
) -> ExtractionResult:
    """Extract the watermark from ``suspect`` and compare it with the key.

    Parameters
    ----------
    suspect:
        The deployed (possibly attacked, possibly unrelated) quantized model.
    key:
        The owner's watermark key.
    strict_layout:
        When true (default) the suspect model must expose every layer named
        in the key with matching weight shapes; otherwise missing layers are
        counted as fully unmatched instead of raising.

    Returns
    -------
    ExtractionResult
        Match counts, WER and the false-claim probability.
    """
    locations = reproduce_locations(key)
    matched = 0
    total = 0
    per_layer_wer: Dict[str, float] = {}
    for name in key.layer_names:
        layer_signature = key.signature_for_layer(name)
        total += layer_signature.size
        if name not in suspect.layers:
            if strict_layout:
                raise KeyError(f"suspect model has no quantized layer named {name!r}")
            per_layer_wer[name] = 0.0
            continue
        suspect_layer = suspect.get_layer(name)
        reference = key.reference_weights[name]
        if suspect_layer.weight_int.shape != reference.shape:
            if strict_layout:
                raise ValueError(
                    f"layer {name!r} shape mismatch: suspect {suspect_layer.weight_int.shape} "
                    f"vs reference {reference.shape}"
                )
            per_layer_wer[name] = 0.0
            continue
        flat_suspect = suspect_layer.weight_int.reshape(-1)
        flat_reference = reference.reshape(-1)
        layer_locations = locations[name]
        delta = flat_suspect[layer_locations] - flat_reference[layer_locations]
        layer_matches = int(np.sum(delta == layer_signature))
        matched += layer_matches
        per_layer_wer[name] = 100.0 * layer_matches / layer_signature.size
    wer = 100.0 * matched / total if total else 0.0
    probability = false_claim_probability(total, matched) if total else 1.0
    result = ExtractionResult(
        total_bits=total,
        matched_bits=matched,
        wer_percent=wer,
        per_layer_wer=per_layer_wer,
        false_claim_probability=probability,
        locations=locations,
    )
    logger.debug("extraction from %s: %s", suspect.config.name, result.summary())
    return result


def verify_ownership(
    suspect: QuantizedModel,
    key: WatermarkKey,
    wer_threshold: float = DEFAULT_OWNERSHIP_THRESHOLD,
    max_false_claim_probability: Optional[float] = 1e-6,
) -> bool:
    """Ownership verdict: does ``suspect`` carry the owner's watermark?

    The claim is asserted when the extraction rate reaches ``wer_threshold``
    percent *and* (optionally) the false-claim probability of the observed
    match count is below ``max_false_claim_probability``.
    """
    result = extract_watermark(suspect, key, strict_layout=False)
    if result.wer_percent < wer_threshold:
        return False
    if (
        max_false_claim_probability is not None
        and result.false_claim_probability > max_false_claim_probability
    ):
        return False
    return True
