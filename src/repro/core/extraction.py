"""Watermark extraction and ownership proof (Section 4.2).

Given a suspect deployed model and the owner's
:class:`~repro.core.keys.WatermarkKey`, extraction

1. reproduces the watermark weight locations ``L`` by re-running the scoring
   and seeded sub-sampling on the key's reference weights and full-precision
   activations,
2. reads the suspect model's integer weights at ``L`` and forms
   ``ΔW[L] = W'[L] − W[L]`` (Equation 6),
3. compares ``ΔW[L]`` with the inserted signature ``B`` and reports the
   watermark extraction rate ``WER = 100 · |B|' / |B|`` (Equation 7), and
4. converts the match count into the false-claim probability of Equation 8 so
   the owner can quote the statistical strength of the ownership claim.

Since the engine refactor this module is the stable functional facade over
:class:`repro.engine.WatermarkEngine`: location reproduction is served from
the engine's memoized plan cache (an extraction against a previously seen
key performs **zero rescoring**), layers are matched in parallel, and the
bulk workload lives in :meth:`~repro.engine.WatermarkEngine.verify_fleet`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

import numpy as np

from repro.core.insertion import _engine
from repro.core.keys import WatermarkKey
from repro.engine.reports import (
    DEFAULT_MAX_FALSE_CLAIM_PROBABILITY,
    DEFAULT_OWNERSHIP_THRESHOLD,
    ExtractionResult,
)
from repro.quant.base import QuantizedModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.engine import WatermarkEngine

__all__ = ["ExtractionResult", "extract_watermark", "verify_ownership", "reproduce_locations"]


def reproduce_locations(
    key: WatermarkKey, engine: "Optional[WatermarkEngine]" = None
) -> Dict[str, np.ndarray]:
    """Recompute the watermark locations ``L`` from the key alone.

    The key carries the original quantized weights ``W``, the full-precision
    activations ``A_f``, the coefficients α/β and the seed ``d`` — everything
    the scoring + sub-sampling pipeline consumed during insertion — so the
    reproduced locations are identical to the inserted ones.  Repeated calls
    for the same key are served from the engine's plan cache.
    """
    return _engine(engine).reproduce_locations(key)


def extract_watermark(
    suspect: QuantizedModel,
    key: WatermarkKey,
    strict_layout: bool = True,
    engine: "Optional[WatermarkEngine]" = None,
) -> ExtractionResult:
    """Extract the watermark from ``suspect`` and compare it with the key.

    Parameters
    ----------
    suspect:
        The deployed (possibly attacked, possibly unrelated) quantized model.
    key:
        The owner's watermark key.
    strict_layout:
        When true (default) the suspect model must expose every layer named
        in the key with matching weight shapes; otherwise missing layers are
        counted as fully unmatched instead of raising.
    engine:
        Run on a specific :class:`~repro.engine.WatermarkEngine`; the
        process-wide default engine is used when omitted.

    Returns
    -------
    ExtractionResult
        Match counts, WER and the false-claim probability.
    """
    return _engine(engine).extract(suspect, key, strict_layout=strict_layout)


def verify_ownership(
    suspect: QuantizedModel,
    key: WatermarkKey,
    wer_threshold: float = DEFAULT_OWNERSHIP_THRESHOLD,
    max_false_claim_probability: Optional[float] = DEFAULT_MAX_FALSE_CLAIM_PROBABILITY,
    engine: "Optional[WatermarkEngine]" = None,
) -> bool:
    """Ownership verdict: does ``suspect`` carry the owner's watermark?

    The claim is asserted when the extraction rate reaches ``wer_threshold``
    percent *and* (optionally) the false-claim probability of the observed
    match count is below ``max_false_claim_probability``.  To screen many
    suspects against many keys in one call, use
    :meth:`repro.engine.WatermarkEngine.verify_fleet`.
    """
    return _engine(engine).verify(
        suspect,
        key,
        wer_threshold=wer_threshold,
        max_false_claim_probability=max_false_claim_probability,
    )
