"""The owner's watermark key.

Section 4.1 lists what the owner keeps after insertion: "(i) signature
sequence ``B``; (ii) the random seed ``d``, the original quantized weight
``W``, full-precision activation ``A_f``, and α, β coefficients for location
``L`` reproduction."  :class:`WatermarkKey` bundles exactly these pieces, plus
the metadata needed to interpret them (layer order, bits per layer, the
quantization method/precision of the model the key belongs to).

The key is what makes the scheme confidential: an adversary holding the
deployed model but not the key cannot reproduce the scores (no ``A_f``), the
candidate sub-sampling (no ``d``), or the expected signature (no ``B``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.core.config import EmMarkConfig
from repro.models.activations import ActivationStats
from repro.utils.serialization import load_json, load_npz, save_json, save_npz

__all__ = ["WatermarkKey"]

PathLike = Union[str, Path]


@dataclass
class WatermarkKey:
    """Everything the model owner needs to later prove ownership.

    Attributes
    ----------
    signature:
        The full ±1 signature sequence ``B``.
    config:
        The :class:`~repro.core.config.EmMarkConfig` used at insertion
        (contains α, β and the random seed ``d``).
    reference_weights:
        Snapshot of the *original* (pre-watermark) integer weights ``W`` per
        layer; extraction compares the suspect model against these.
    activations:
        The full-precision activation statistics ``A_f`` used for scoring.
    layer_names:
        Quantization layers in the canonical order the signature was split
        over.
    method, bits:
        Quantization framework and precision of the watermarked model (for
        bookkeeping and sanity checks at extraction time).
    model_name:
        Name of the model configuration the key belongs to.
    outlier_columns:
        For LLM.int8()-quantized models, the per-layer indices of the input
        channels kept in full precision; extraction needs them to rebuild the
        exact eligibility mask used during insertion.
    """

    signature: np.ndarray
    config: EmMarkConfig
    reference_weights: Dict[str, np.ndarray]
    activations: ActivationStats
    layer_names: List[str]
    method: str = ""
    bits: int = 0
    model_name: str = ""
    outlier_columns: Dict[str, np.ndarray] = field(default_factory=dict)
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.signature = np.asarray(self.signature, dtype=np.int64).reshape(-1)
        expected = self.config.bits_per_layer * len(self.layer_names)
        if self.signature.size != expected:
            raise ValueError(
                f"signature length {self.signature.size} does not match "
                f"{self.config.bits_per_layer} bits x {len(self.layer_names)} layers"
            )
        missing = [name for name in self.layer_names if name not in self.reference_weights]
        if missing:
            raise ValueError(f"reference weights missing for layers: {missing[:4]}")

    @property
    def total_bits(self) -> int:
        """Total signature length ``|B|``."""
        return int(self.signature.size)

    @property
    def num_layers(self) -> int:
        """Number of quantization layers covered by the key."""
        return len(self.layer_names)

    def signature_for_layer(self, layer_name: str) -> np.ndarray:
        """The slice of the signature assigned to ``layer_name``."""
        try:
            index = self.layer_names.index(layer_name)
        except ValueError as exc:
            raise KeyError(f"layer {layer_name!r} is not covered by this key") from exc
        bits = self.config.bits_per_layer
        return self.signature[index * bits : (index + 1) * bits]

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def save(self, directory: PathLike) -> Path:
        """Persist the key into ``directory`` (two files: JSON + NPZ).

        The JSON file holds the scalar metadata and configuration, the NPZ
        archive holds the signature, reference weights and activations.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        meta = {
            "config": {
                "bits_per_layer": self.config.bits_per_layer,
                "alpha": self.config.alpha,
                "beta": self.config.beta,
                "seed": self.config.seed,
                "candidate_pool_ratio": self.config.candidate_pool_ratio,
                "max_candidate_fraction": self.config.max_candidate_fraction,
                "signature_seed": self.config.signature_seed,
                "exclude_saturated": self.config.exclude_saturated,
            },
            "layer_names": self.layer_names,
            "method": self.method,
            "bits": self.bits,
            "model_name": self.model_name,
            "metadata": self.metadata,
        }
        save_json(directory / "watermark_key.json", meta)
        arrays: Dict[str, np.ndarray] = {"signature": self.signature}
        for name, weights in self.reference_weights.items():
            arrays[f"weights/{name}"] = weights
        for name, columns in self.outlier_columns.items():
            arrays[f"outliers/{name}"] = np.asarray(columns, dtype=np.int64)
        for key, value in self.activations.to_arrays().items():
            arrays[f"activations/{key}"] = value
        save_npz(directory / "watermark_key.npz", arrays)
        return directory

    @classmethod
    def load(cls, directory: PathLike) -> "WatermarkKey":
        """Load a key previously written by :meth:`save`."""
        directory = Path(directory)
        meta = load_json(directory / "watermark_key.json")
        arrays = load_npz(directory / "watermark_key.npz")
        reference_weights: Dict[str, np.ndarray] = {}
        outlier_columns: Dict[str, np.ndarray] = {}
        activation_arrays: Dict[str, np.ndarray] = {}
        for key, value in arrays.items():
            if key.startswith("weights/"):
                reference_weights[key[len("weights/") :]] = value.astype(np.int64)
            elif key.startswith("outliers/"):
                outlier_columns[key[len("outliers/") :]] = value.astype(np.int64)
            elif key.startswith("activations/"):
                activation_arrays[key[len("activations/") :]] = value
        config = EmMarkConfig(**meta["config"])
        return cls(
            signature=arrays["signature"].astype(np.int64),
            config=config,
            reference_weights=reference_weights,
            activations=ActivationStats.from_arrays(activation_arrays),
            layer_names=list(meta["layer_names"]),
            method=meta.get("method", ""),
            bits=int(meta.get("bits", 0)),
            model_name=meta.get("model_name", ""),
            outlier_columns=outlier_columns,
            metadata=dict(meta.get("metadata", {})),
        )

    def describe(self) -> str:
        """Human-readable one-line summary."""
        return (
            f"WatermarkKey(model={self.model_name or '?'}, method={self.method or '?'}, "
            f"bits={self.bits}, |B|={self.total_bits}, layers={self.num_layers}, "
            f"alpha={self.config.alpha}, beta={self.config.beta}, seed={self.config.seed})"
        )
