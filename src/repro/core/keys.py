"""The owner's watermark key.

Section 4.1 lists what the owner keeps after insertion: "(i) signature
sequence ``B``; (ii) the random seed ``d``, the original quantized weight
``W``, full-precision activation ``A_f``, and α, β coefficients for location
``L`` reproduction."  :class:`WatermarkKey` bundles exactly these pieces, plus
the metadata needed to interpret them (layer order, bits per layer, the
quantization method/precision of the model the key belongs to).

The key is what makes the scheme confidential: an adversary holding the
deployed model but not the key cannot reproduce the scores (no ``A_f``), the
candidate sub-sampling (no ``d``), or the expected signature (no ``B``).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Tuple, Union

import numpy as np

from repro.core.config import EmMarkConfig
from repro.models.activations import ActivationStats
from repro.utils.serialization import (
    load_json,
    load_npz,
    load_npz_mmap,
    save_json,
    save_npz,
)

__all__ = ["WatermarkKey", "model_fingerprint", "layer_shapes_fingerprint"]

PathLike = Union[str, Path]


def _digest(payload: Dict[str, object], prefix: str, extra_bytes: bytes = b"") -> str:
    """Short stable hex digest of a JSON-able payload (+ optional raw bytes)."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    hasher = hashlib.sha256(canonical.encode("utf-8"))
    hasher.update(extra_bytes)
    return f"{prefix}-{hasher.hexdigest()[:20]}"


def layer_shapes_fingerprint(
    model_name: str,
    method: str,
    bits: int,
    layer_shapes: Mapping[str, Tuple[int, ...]],
) -> str:
    """Content fingerprint of a model *identity* (name, precision, geometry).

    This is the registry's index key: a watermark key computed for a model and
    any suspect deployment of that model (watermarked or not) share the same
    fingerprint, because watermarking and the integer-domain attacks change
    weight values, never layer names or shapes.
    """
    payload = {
        "model_name": model_name,
        "method": method,
        "bits": int(bits),
        "layers": {name: list(shape) for name, shape in layer_shapes.items()},
    }
    return _digest(payload, "wmm")


def model_fingerprint(model) -> str:
    """The :func:`layer_shapes_fingerprint` of a quantized model.

    Duck-typed (anything exposing ``config.name``, ``method``, ``bits`` and a
    ``layers`` mapping of objects with ``weight_int`` works) so this module
    stays free of a ``repro.quant`` import.
    """
    return layer_shapes_fingerprint(
        model.config.name,
        model.method,
        model.bits,
        {name: tuple(layer.weight_int.shape) for name, layer in model.layers.items()},
    )


@dataclass
class WatermarkKey:
    """Everything the model owner needs to later prove ownership.

    Attributes
    ----------
    signature:
        The full ±1 signature sequence ``B``.
    config:
        The :class:`~repro.core.config.EmMarkConfig` used at insertion
        (contains α, β and the random seed ``d``).
    reference_weights:
        Snapshot of the *original* (pre-watermark) integer weights ``W`` per
        layer; extraction compares the suspect model against these.
    activations:
        The full-precision activation statistics ``A_f`` used for scoring.
    layer_names:
        Quantization layers in the canonical order the signature was split
        over.
    method, bits:
        Quantization framework and precision of the watermarked model (for
        bookkeeping and sanity checks at extraction time).
    model_name:
        Name of the model configuration the key belongs to.
    outlier_columns:
        For LLM.int8()-quantized models, the per-layer indices of the input
        channels kept in full precision; extraction needs them to rebuild the
        exact eligibility mask used during insertion.
    """

    signature: np.ndarray
    config: EmMarkConfig
    reference_weights: Dict[str, np.ndarray]
    activations: ActivationStats
    layer_names: List[str]
    method: str = ""
    bits: int = 0
    model_name: str = ""
    outlier_columns: Dict[str, np.ndarray] = field(default_factory=dict)
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.signature = np.asarray(self.signature, dtype=np.int64).reshape(-1)
        expected = self.config.bits_per_layer * len(self.layer_names)
        if self.signature.size != expected:
            raise ValueError(
                f"signature length {self.signature.size} does not match "
                f"{self.config.bits_per_layer} bits x {len(self.layer_names)} layers"
            )
        missing = [name for name in self.layer_names if name not in self.reference_weights]
        if missing:
            raise ValueError(f"reference weights missing for layers: {missing[:4]}")

    @property
    def total_bits(self) -> int:
        """Total signature length ``|B|``."""
        return int(self.signature.size)

    @property
    def num_layers(self) -> int:
        """Number of quantization layers covered by the key."""
        return len(self.layer_names)

    def signature_for_layer(self, layer_name: str) -> np.ndarray:
        """The slice of the signature assigned to ``layer_name``."""
        try:
            index = self.layer_names.index(layer_name)
        except ValueError as exc:
            raise KeyError(f"layer {layer_name!r} is not covered by this key") from exc
        bits = self.config.bits_per_layer
        return self.signature[index * bits : (index + 1) * bits]

    # ------------------------------------------------------------------
    # Co-residency (multi-owner coexistence)
    # ------------------------------------------------------------------
    @property
    def co_residents(self) -> List[str]:
        """Labels of the other owners sharing this key's model (may be empty).

        Recorded by the engine when the key was inserted through a
        :class:`~repro.engine.allocator.SlotAllocator`; purely informational
        (verification never needs it — the occupancy itself lives in
        ``metadata["occupied_slots"]``).
        """
        return list(self.metadata.get("co_residents", []))

    @property
    def occupied_slots(self) -> Dict[str, List[int]]:
        """Per-layer slots that were already held when this key was planned.

        Location-determining: extraction replays this occupancy so the
        re-ranked plan reproduces exactly.  Empty for single-owner keys.
        """
        return {
            str(name): [int(i) for i in indices]
            for name, indices in (self.metadata.get("occupied_slots") or {}).items()
        }

    # ------------------------------------------------------------------
    # Fingerprinting (content addressing for the key registry)
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Content-addressed identifier of the key.

        Hashes the signature bits together with everything that determines the
        watermark locations (α, β, seed ``d``, pool rule, layer order), the
        model identity, **the reference integer weights and the activation
        saliencies**, so two registrations of the same key collapse to one
        registry entry while any semantic difference — a different signature,
        seed, a retrained model under the same name, or re-collected
        calibration activations — yields a distinct id.  (Weights and
        activations both determine the locations ``L``; omitting either
        would let a newer key silently collide with a stale registry entry
        whose locations no longer match.)
        """
        weights = hashlib.sha256()
        for name in self.layer_names:
            weights.update(np.ascontiguousarray(self.reference_weights[name]).tobytes())
            weights.update(
                np.ascontiguousarray(
                    self.activations.channel_saliency(name), dtype=np.float64
                ).tobytes()
            )
        payload = {
            "config": {
                "bits_per_layer": self.config.bits_per_layer,
                "alpha": self.config.alpha,
                "beta": self.config.beta,
                "seed": self.config.seed,
                "candidate_pool_ratio": self.config.candidate_pool_ratio,
                "max_candidate_fraction": self.config.max_candidate_fraction,
                "exclude_saturated": self.config.exclude_saturated,
            },
            "layer_names": self.layer_names,
            "model_name": self.model_name,
            "method": self.method,
            "bits": self.bits,
        }
        occupied = self.metadata.get("occupied_slots") or {}
        if occupied:
            # The slot-allocation axis is location-determining: the same
            # signature + seed + weights planned under different co-resident
            # occupancies selects different positions, so the occupancy must
            # separate the ids.  Absent occupancy adds nothing — pre-existing
            # single-owner fingerprints are unchanged.
            payload["occupied_slots"] = {
                str(name): [int(i) for i in indices] for name, indices in occupied.items()
            }
        return _digest(
            payload, "wmk", extra_bytes=self.signature.tobytes() + weights.digest()
        )

    def model_fingerprint(self) -> str:
        """Identity fingerprint of the model this key was inserted into.

        Matches :func:`model_fingerprint` of the original quantized model and
        of any suspect deployment of it, which is how the registry finds the
        candidate keys for an incoming suspect.
        """
        return layer_shapes_fingerprint(
            self.model_name,
            self.method,
            self.bits,
            {name: tuple(w.shape) for name, w in self.reference_weights.items()},
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_payload(self) -> Tuple[Dict[str, object], Dict[str, np.ndarray]]:
        """Split the key into ``(meta, arrays)`` — JSON-able scalars plus bulk.

        The payload is the single serialization form behind both the on-disk
        directory layout (:meth:`save`) and the service wire format
        (:mod:`repro.service.codec`).
        """
        meta = {
            "config": {
                "bits_per_layer": self.config.bits_per_layer,
                "alpha": self.config.alpha,
                "beta": self.config.beta,
                "seed": self.config.seed,
                "candidate_pool_ratio": self.config.candidate_pool_ratio,
                "max_candidate_fraction": self.config.max_candidate_fraction,
                "signature_seed": self.config.signature_seed,
                "exclude_saturated": self.config.exclude_saturated,
            },
            "layer_names": self.layer_names,
            "method": self.method,
            "bits": self.bits,
            "model_name": self.model_name,
            "metadata": self.metadata,
        }
        arrays: Dict[str, np.ndarray] = {"signature": self.signature}
        for name, weights in self.reference_weights.items():
            arrays[f"weights/{name}"] = weights
        for name, columns in self.outlier_columns.items():
            arrays[f"outliers/{name}"] = np.asarray(columns, dtype=np.int64)
        for key, value in self.activations.to_arrays().items():
            arrays[f"activations/{key}"] = value
        return meta, arrays

    @classmethod
    def from_payload(
        cls, meta: Dict[str, object], arrays: Dict[str, np.ndarray]
    ) -> "WatermarkKey":
        """Rebuild a key from the ``(meta, arrays)`` form of :meth:`to_payload`."""
        try:
            reference_weights: Dict[str, np.ndarray] = {}
            outlier_columns: Dict[str, np.ndarray] = {}
            activation_arrays: Dict[str, np.ndarray] = {}
            # ``asarray`` instead of ``astype``: already-int64 inputs pass
            # through untouched, so a key restored from shared-memory views
            # (see :mod:`repro.engine.shm`) stays zero-copy and read-only;
            # mistyped inputs are still converted exactly as before.
            for key, value in arrays.items():
                if key.startswith("weights/"):
                    reference_weights[key[len("weights/") :]] = np.asarray(value, dtype=np.int64)
                elif key.startswith("outliers/"):
                    outlier_columns[key[len("outliers/") :]] = np.asarray(value, dtype=np.int64)
                elif key.startswith("activations/"):
                    activation_arrays[key[len("activations/") :]] = value
            config = EmMarkConfig(**meta["config"])
            return cls(
                signature=np.asarray(arrays["signature"], dtype=np.int64),
                config=config,
                reference_weights=reference_weights,
                activations=ActivationStats.from_arrays(activation_arrays),
                layer_names=list(meta["layer_names"]),
                method=meta.get("method", ""),
                bits=int(meta.get("bits", 0)),
                model_name=meta.get("model_name", ""),
                outlier_columns=outlier_columns,
                metadata=dict(meta.get("metadata", {})),
            )
        except (KeyError, TypeError) as exc:
            raise ValueError(f"malformed watermark key payload: {exc}") from exc

    def save(self, directory: PathLike, compressed: bool = True) -> Path:
        """Persist the key into ``directory`` (two files: JSON + NPZ).

        The JSON file holds the scalar metadata and configuration, the NPZ
        archive holds the signature, reference weights and activations.
        ``compressed=False`` writes the archive with ``ZIP_STORED`` members so
        later loads can memory-map the arrays (see ``mmap`` on :meth:`load`) —
        the layout the lazy key registry persists.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        meta, arrays = self.to_payload()
        save_json(directory / "watermark_key.json", meta)
        save_npz(directory / "watermark_key.npz", arrays, compressed=compressed)
        return directory

    @classmethod
    def load(cls, directory: PathLike, mmap: bool = False) -> "WatermarkKey":
        """Load a key previously written by :meth:`save`.

        With ``mmap=True`` uncompressed archive members come back as read-only
        memory-mapped views (compressed members silently fall back to an
        in-memory read), so a registry holding many resident keys keeps its
        bulk arrays in the page cache rather than anonymous memory.

        Raises
        ------
        FileNotFoundError
            When either of the two key files is missing.
        ValueError
            When a file exists but is corrupted (invalid JSON, a damaged NPZ
            archive, or metadata inconsistent with the arrays).
        """
        directory = Path(directory)
        try:
            meta = load_json(directory / "watermark_key.json")
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"corrupted watermark key metadata in {directory}: {exc}"
            ) from exc
        loader = load_npz_mmap if mmap else load_npz
        try:
            arrays = loader(directory / "watermark_key.npz")
        except FileNotFoundError:
            raise
        except Exception as exc:  # zipfile.BadZipFile, pickle refusal, OSError…
            raise ValueError(
                f"corrupted watermark key archive in {directory}: {exc}"
            ) from exc
        return cls.from_payload(meta, arrays)

    def describe(self) -> str:
        """Human-readable one-line summary."""
        return (
            f"WatermarkKey(model={self.model_name or '?'}, method={self.method or '?'}, "
            f"bits={self.bits}, |B|={self.total_bits}, layers={self.num_layers}, "
            f"alpha={self.config.alpha}, beta={self.config.beta}, seed={self.config.seed})"
        )
