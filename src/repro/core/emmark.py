"""The EmMark facade.

:class:`EmMark` packages the insertion and extraction stages behind the
:class:`~repro.core.interface.Watermarker` interface used by the experiment
harness, and also exposes the richer key-based API (``insert_with_key`` /
``extract_with_key`` / ``verify`` / ``verify_fleet``) that downstream users
of the library are expected to call.

Every EmMark instance runs on a :class:`~repro.engine.WatermarkEngine` —
either one passed explicitly (e.g. the experiment harness shares a single
engine so attack sweeps reuse cached location plans) or the process-wide
default engine.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

from repro.core.config import EmMarkConfig
from repro.core.extraction import ExtractionResult
from repro.core.insertion import InsertionReport
from repro.core.interface import InsertionRecord, Watermarker
from repro.core.keys import WatermarkKey
from repro.engine.reports import DEFAULT_OWNERSHIP_THRESHOLD
from repro.models.activations import ActivationStats
from repro.quant.base import QuantizedModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.engine import WatermarkEngine
    from repro.engine.reports import FleetVerificationReport

__all__ = ["EmMark"]


class EmMark(Watermarker):
    """EmMark watermarking for embedded quantized LLMs.

    Parameters
    ----------
    config:
        Insertion hyper-parameters.  When omitted, each insertion derives a
        configuration scaled to the target model via
        :meth:`EmMarkConfig.scaled_for_model`.
    engine:
        The :class:`~repro.engine.WatermarkEngine` to run on; the
        process-wide default engine (shared plan cache and thread pool) is
        used when omitted.

    Examples
    --------
    >>> from repro.core import EmMark, EmMarkConfig
    >>> emmark = EmMark(EmMarkConfig(bits_per_layer=8, seed=100))
    >>> wm_model, key, report = emmark.insert_with_key(quantized, activations)
    >>> emmark.extract_with_key(wm_model, key).wer_percent
    100.0
    """

    method_name = "emmark"

    def __init__(
        self,
        config: Optional[EmMarkConfig] = None,
        engine: "Optional[WatermarkEngine]" = None,
    ) -> None:
        self.config = config
        self.engine = engine

    # (engine resolution — the ``_engine`` property — is inherited from
    # :class:`~repro.core.interface.Watermarker`.)

    # ------------------------------------------------------------------
    # Key-based API (primary)
    # ------------------------------------------------------------------
    def insert_with_key(
        self,
        model: QuantizedModel,
        activations: ActivationStats,
        signature: Optional[np.ndarray] = None,
        config: Optional[EmMarkConfig] = None,
    ) -> Tuple[QuantizedModel, WatermarkKey, InsertionReport]:
        """Watermark ``model`` and return the watermarked copy, key and report."""
        effective = config or self.config or EmMarkConfig.scaled_for_model(model)
        return self._engine.insert(model, activations, config=effective, signature=signature)

    def insert_multi(self, model: QuantizedModel, activations: ActivationStats, owners, **kwargs):
        """Insert N co-resident owners into one model — see
        :meth:`repro.engine.WatermarkEngine.insert_multi`."""
        return self._engine.insert_multi(model, activations, owners, **kwargs)

    def extract_with_key(self, suspect: QuantizedModel, key: WatermarkKey) -> ExtractionResult:
        """Extract the watermark from ``suspect`` using the owner's key."""
        return self._engine.extract(suspect, key, strict_layout=False)

    def verify(
        self,
        suspect: QuantizedModel,
        key: WatermarkKey,
        wer_threshold: float = DEFAULT_OWNERSHIP_THRESHOLD,
    ) -> bool:
        """Boolean ownership verdict (see :func:`verify_ownership`)."""
        return self._engine.verify(suspect, key, wer_threshold=wer_threshold)

    def verify_fleet(self, suspects, keys, **kwargs) -> "FleetVerificationReport":
        """Batch ownership screening — see :meth:`WatermarkEngine.verify_fleet`."""
        return self._engine.verify_fleet(suspects, keys, **kwargs)

    # ------------------------------------------------------------------
    # Watermarker interface (used by the Table 1 harness)
    # ------------------------------------------------------------------
    def insert(
        self,
        model: QuantizedModel,
        activations: Optional[ActivationStats] = None,
        signature: Optional[np.ndarray] = None,
    ) -> Tuple[QuantizedModel, InsertionRecord]:
        if activations is None:
            raise ValueError("EmMark requires full-precision activation statistics")
        watermarked, key, report = self.insert_with_key(model, activations, signature=signature)
        record = InsertionRecord(
            method=self.method_name,
            signature=key.signature,
            payload={"key": key, "report": report},
        )
        return watermarked, record

    def extract(self, suspect: QuantizedModel, record: InsertionRecord) -> ExtractionResult:
        key = record.payload.get("key")
        if not isinstance(key, WatermarkKey):
            raise ValueError("insertion record does not contain an EmMark watermark key")
        return self.extract_with_key(suspect, key)
