"""Common interface shared by EmMark and the baseline watermarking schemes.

The fidelity experiment (Table 1) runs three watermarking frameworks —
EmMark, RandomWM and SpecMark — through the same pipeline: insert into a
quantized model, evaluate the watermarked model's quality, then extract and
report the WER.  :class:`Watermarker` is the small abstract interface that
lets the experiment treat them interchangeably.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.extraction import ExtractionResult
from repro.models.activations import ActivationStats
from repro.quant.base import QuantizedModel

__all__ = ["InsertionRecord", "Watermarker"]


@dataclass
class InsertionRecord:
    """Method-agnostic record of one watermark insertion.

    EmMark's record wraps its :class:`~repro.core.keys.WatermarkKey`; the
    baselines store whatever they need to attempt extraction later (explicit
    locations for RandomWM, the DCT band description for SpecMark).
    """

    method: str
    signature: np.ndarray
    payload: Dict[str, object] = field(default_factory=dict)

    @property
    def total_bits(self) -> int:
        """Number of signature bits the method attempted to insert."""
        return int(np.asarray(self.signature).size)


class Watermarker:
    """Abstract base class for watermarking schemes.

    Sub-classes implement :meth:`insert` and :meth:`extract`; the shared
    :meth:`watermark_and_verify` convenience runs the full round trip used in
    the fidelity experiments.
    """

    #: Registry / reporting name of the scheme.
    method_name: str = "base"

    def insert(
        self,
        model: QuantizedModel,
        activations: Optional[ActivationStats] = None,
        signature: Optional[np.ndarray] = None,
    ) -> Tuple[QuantizedModel, InsertionRecord]:
        """Insert a watermark and return ``(watermarked_model, record)``."""
        raise NotImplementedError

    def extract(self, suspect: QuantizedModel, record: InsertionRecord) -> ExtractionResult:
        """Extract the watermark from ``suspect`` using ``record``."""
        raise NotImplementedError

    def watermark_and_verify(
        self,
        model: QuantizedModel,
        activations: Optional[ActivationStats] = None,
        signature: Optional[np.ndarray] = None,
    ) -> Tuple[QuantizedModel, InsertionRecord, ExtractionResult]:
        """Insert, then immediately extract from the watermarked model.

        Returns the watermarked model, the insertion record and the
        self-extraction result (which should be 100% WER for a functioning
        scheme — SpecMark's failure to achieve this on quantized models is
        one of the paper's findings).
        """
        watermarked, record = self.insert(model, activations=activations, signature=signature)
        result = self.extract(watermarked, record)
        return watermarked, record, result

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}()"
