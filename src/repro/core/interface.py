"""Common interface shared by EmMark and the baseline watermarking schemes.

The fidelity experiment (Table 1) runs three watermarking frameworks —
EmMark, RandomWM and SpecMark — through the same pipeline: insert into a
quantized model, evaluate the watermarked model's quality, then extract and
report the WER.  :class:`Watermarker` is the small abstract interface that
lets the experiment treat them interchangeably.

All schemes share the :class:`~repro.engine.WatermarkEngine` execution
substrate: the base class exposes the engine's parallel layer executor
(:meth:`Watermarker.map_layers`) so per-layer insertion/extraction loops run
concurrently, and :meth:`Watermarker.extract_many` screens several suspects
against one insertion record in a single call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.extraction import ExtractionResult
from repro.models.activations import ActivationStats
from repro.quant.base import QuantizedModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.engine import WatermarkEngine

__all__ = ["InsertionRecord", "Watermarker"]


@dataclass
class InsertionRecord:
    """Method-agnostic record of one watermark insertion.

    EmMark's record wraps its :class:`~repro.core.keys.WatermarkKey`; the
    baselines store whatever they need to attempt extraction later (explicit
    locations for RandomWM, the DCT band description for SpecMark).
    """

    method: str
    signature: np.ndarray
    payload: Dict[str, object] = field(default_factory=dict)

    @property
    def total_bits(self) -> int:
        """Number of signature bits the method attempted to insert."""
        return int(np.asarray(self.signature).size)


class Watermarker:
    """Abstract base class for watermarking schemes.

    Sub-classes implement :meth:`insert` and :meth:`extract`; the shared
    :meth:`watermark_and_verify` convenience runs the full round trip used in
    the fidelity experiments.
    """

    #: Registry / reporting name of the scheme.
    method_name: str = "base"

    #: Engine the scheme runs on; ``None`` means the process-wide default.
    engine: "Optional[WatermarkEngine]" = None

    @property
    def _engine(self) -> "WatermarkEngine":
        """The execution engine (lazy import; see :mod:`repro.core.insertion`)."""
        if self.engine is not None:
            return self.engine
        from repro.engine.engine import get_default_engine

        return get_default_engine()

    def map_layers(self, fn, items) -> List:
        """Fan independent per-layer work out on the engine's thread pool."""
        return self._engine.map_layers(fn, items)

    def insert(
        self,
        model: QuantizedModel,
        activations: Optional[ActivationStats] = None,
        signature: Optional[np.ndarray] = None,
    ) -> Tuple[QuantizedModel, InsertionRecord]:
        """Insert a watermark and return ``(watermarked_model, record)``."""
        raise NotImplementedError

    def extract(self, suspect: QuantizedModel, record: InsertionRecord) -> ExtractionResult:
        """Extract the watermark from ``suspect`` using ``record``."""
        raise NotImplementedError

    def extract_many(
        self, suspects: Sequence[QuantizedModel], record: InsertionRecord
    ) -> List[ExtractionResult]:
        """Extract the same watermark from several suspects.

        The default implementation simply loops — each per-suspect
        :meth:`extract` already parallelizes across layers on the shared
        engine, and cached schemes (EmMark) reuse one location plan for the
        whole batch.
        """
        return [self.extract(suspect, record) for suspect in suspects]

    def watermark_and_verify(
        self,
        model: QuantizedModel,
        activations: Optional[ActivationStats] = None,
        signature: Optional[np.ndarray] = None,
    ) -> Tuple[QuantizedModel, InsertionRecord, ExtractionResult]:
        """Insert, then immediately extract from the watermarked model.

        Returns the watermarked model, the insertion record and the
        self-extraction result (which should be 100% WER for a functioning
        scheme — SpecMark's failure to achieve this on quantized models is
        one of the paper's findings).
        """
        watermarked, record = self.insert(model, activations=activations, signature=signature)
        result = self.extract(watermarked, record)
        return watermarked, record, result

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}()"
