"""Watermark strength (Equation 8).

The strength of an EmMark watermark is the probability that an *unrelated*
model matches at least ``k`` of the ``|B|`` inserted signature bits by chance.
Because each bit is Rademacher (±1 with probability 0.5) and an unrelated
model's weight differences are independent of the signature, the number of
matching bits follows a Binomial(|B|, 0.5) distribution:

``P_c = Σ_{i=k}^{|B|} C(|B|, i) · 0.5^{|B|}``

The paper reports ``P_c ≈ 9.09 × 10⁻¹³`` for a fully matched 40-bit layer and
``≈ 1.57 × 10⁻³⁰`` for 100 bits, and raises the per-layer strength to the
``n``-th power for an ``n``-layer model because the per-layer signatures are
independent.
"""

from __future__ import annotations

from typing import Union

import numpy as np
from scipy import special

__all__ = [
    "false_claim_probability",
    "watermark_strength",
    "log10_watermark_strength",
    "required_bits_for_strength",
]


def false_claim_probability(total_bits: int, matched_bits: int) -> float:
    """Equation 8: probability of matching at least ``matched_bits`` by chance.

    Parameters
    ----------
    total_bits:
        Signature length ``|B|``.
    matched_bits:
        Observed number of matching bits ``k``.
    """
    if total_bits < 1:
        raise ValueError("total_bits must be >= 1")
    if not 0 <= matched_bits <= total_bits:
        raise ValueError("matched_bits must be between 0 and total_bits")
    if matched_bits == 0:
        return 1.0
    # Survival function of Binomial(n, 0.5) evaluated exactly in log space to
    # stay meaningful for the astronomically small tail probabilities the
    # paper quotes (1e-30 and far beyond).  Always sum the *smaller* tail:
    # summing the near-1 side directly wobbles by a few ULPs across adjacent
    # ``matched_bits`` values, which breaks the monotonicity callers rely on
    # when re-thresholding evidence.
    if 2 * matched_bits > total_bits:
        log_probability = _log_binomial_tail(total_bits, matched_bits)
        return float(min(1.0, np.exp(log_probability)))
    lower_tail = np.exp(_log_binomial_lower_tail(total_bits, matched_bits - 1))
    return float(max(0.0, 1.0 - lower_tail))


def _log_binomial_mass(n: int, lo: int, hi: int) -> float:
    """Natural log of ``P[lo <= X <= hi]`` for ``X ~ Binomial(n, 0.5)``."""
    terms = np.arange(lo, hi + 1, dtype=np.float64)
    log_terms = (
        special.gammaln(n + 1)
        - special.gammaln(terms + 1)
        - special.gammaln(n - terms + 1)
        - n * np.log(2.0)
    )
    return float(special.logsumexp(log_terms))


def _log_binomial_tail(n: int, k: int) -> float:
    """Natural log of ``P[X >= k]`` for ``X ~ Binomial(n, 0.5)``."""
    return _log_binomial_mass(n, k, n)


def _log_binomial_lower_tail(n: int, k: int) -> float:
    """Natural log of ``P[X <= k]`` for ``X ~ Binomial(n, 0.5)``."""
    return _log_binomial_mass(n, 0, k)


def watermark_strength(
    bits_per_layer: int, num_layers: int = 1, matched_fraction: float = 1.0
) -> float:
    """Strength of an EmMark watermark spanning ``num_layers`` layers.

    The per-layer false-claim probability (Equation 8) is raised to the power
    of the number of layers, following Section 5.1 / 5.3 of the paper where a
    per-layer strength of ``9.09e-13`` becomes ``9.09e-13^n`` for an
    ``n``-layer model.

    Returns 0.0 when the product underflows a double — the paper itself quotes
    values like ``1.57e-5760`` which are only representable in log space; use
    :func:`log10_watermark_strength` when the exact magnitude matters.
    """
    if num_layers < 1:
        raise ValueError("num_layers must be >= 1")
    if not 0.0 < matched_fraction <= 1.0:
        raise ValueError("matched_fraction must be in (0, 1]")
    matched = int(np.ceil(bits_per_layer * matched_fraction))
    per_layer = false_claim_probability(bits_per_layer, matched)
    return float(per_layer ** num_layers)


def log10_watermark_strength(
    bits_per_layer: int, num_layers: int = 1, matched_fraction: float = 1.0
) -> float:
    """Base-10 logarithm of :func:`watermark_strength` (never underflows)."""
    if num_layers < 1:
        raise ValueError("num_layers must be >= 1")
    if not 0.0 < matched_fraction <= 1.0:
        raise ValueError("matched_fraction must be in (0, 1]")
    matched = int(np.ceil(bits_per_layer * matched_fraction))
    log_per_layer = _log_binomial_tail(bits_per_layer, matched) / np.log(10.0)
    return float(num_layers * log_per_layer)


def required_bits_for_strength(
    target_probability: float, num_layers: int = 1
) -> int:
    """Smallest per-layer signature length achieving a target strength.

    Useful for capacity planning: given the desired overall false-claim
    probability and the number of quantization layers, how many bits must be
    inserted per layer (assuming full extraction)?
    """
    if not 0.0 < target_probability < 1.0:
        raise ValueError("target_probability must be in (0, 1)")
    if num_layers < 1:
        raise ValueError("num_layers must be >= 1")
    per_layer_target_log10 = np.log10(target_probability) / num_layers
    bits = 1
    while log10_watermark_strength(bits, 1) > per_layer_target_log10:
        bits += 1
        if bits > 4096:
            raise ValueError("target strength requires more than 4096 bits per layer")
    return bits


Probability = Union[float, np.floating]
