"""EmMark: the paper's primary contribution.

The package implements the full watermarking pipeline of Section 4:

* :mod:`repro.core.config` — :class:`EmMarkConfig`, the insertion
  hyper-parameters (α, β, seed, bits per layer, candidate-pool ratio).
* :mod:`repro.core.signature` — Rademacher signature generation and
  per-layer partitioning.
* :mod:`repro.core.scoring` — the parameter-scoring function
  ``S = α·S_q + β·S_r`` (Equations 2–4) and candidate selection.
* :mod:`repro.core.keys` — :class:`WatermarkKey`, everything the owner keeps
  secret (signature, seed, reference weights, full-precision activations,
  coefficients) plus (de)serialization.
* :mod:`repro.core.insertion` — signature insertion (Equation 5).
* :mod:`repro.core.extraction` — location reproduction, signature decoding,
  WER (Equations 6–7) and ownership verdicts.
* :mod:`repro.core.strength` — the watermark-strength bound (Equation 8).
* :mod:`repro.core.emmark` — the :class:`EmMark` facade tying it together.
* :mod:`repro.core.baselines` — RandomWM and SpecMark comparison methods.
"""

from repro.core.config import EmMarkConfig
from repro.core.signature import generate_signature, split_signature_per_layer
from repro.core.scoring import (
    LayerScores,
    combined_score,
    fused_scores,
    quality_score,
    robustness_score,
    select_candidates,
    topk_argsort_stable,
)
from repro.core.keys import WatermarkKey, model_fingerprint
from repro.core.insertion import (
    InsertionReport,
    MultiOwnerInsertionResult,
    WatermarkLocation,
    insert_watermark,
    insert_watermark_multi,
)
from repro.core.extraction import (
    ExtractionResult,
    extract_watermark,
    reproduce_locations,
    verify_ownership,
)
from repro.core.strength import false_claim_probability, watermark_strength
from repro.core.emmark import EmMark
from repro.core.interface import InsertionRecord, Watermarker

__all__ = [
    "EmMarkConfig",
    "generate_signature",
    "split_signature_per_layer",
    "LayerScores",
    "quality_score",
    "robustness_score",
    "combined_score",
    "fused_scores",
    "topk_argsort_stable",
    "select_candidates",
    "WatermarkKey",
    "model_fingerprint",
    "WatermarkLocation",
    "insert_watermark",
    "insert_watermark_multi",
    "MultiOwnerInsertionResult",
    "InsertionReport",
    "ExtractionResult",
    "extract_watermark",
    "reproduce_locations",
    "verify_ownership",
    "false_claim_probability",
    "watermark_strength",
    "EmMark",
    "Watermarker",
    "InsertionRecord",
]
