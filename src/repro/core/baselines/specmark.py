"""SpecMark: spectral (DCT-domain) watermarking applied to quantized weights.

SpecMark [Chen et al., INTERSPEECH 2020] watermarks full-precision speech
models by transforming the weights into the discrete cosine transform (DCT)
domain and adding a small spread-spectrum signature to the high-frequency
coefficients, where it is imperceptible and robust to fine-tuning.

The paper applies the same procedure to the *quantized* weights of embedded
LLMs (Section 5.1, "Baselines") and observes that it fails: the weight grid
is discrete, so after the inverse transform the watermarked weights must be
re-rounded to integer levels, which erases the tiny high-frequency additions
— the extraction rate collapses to 0% while model quality is (trivially)
unchanged.  This module reproduces exactly that behaviour.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

import numpy as np
from scipy import fft as scipy_fft

from repro.core.extraction import ExtractionResult
from repro.core.interface import InsertionRecord, Watermarker
from repro.core.signature import generate_signature, split_signature_per_layer, validate_signature
from repro.models.activations import ActivationStats
from repro.quant.base import QuantizedModel
from repro.utils.rng import new_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.engine import WatermarkEngine

__all__ = ["SpecMark"]


class SpecMark(Watermarker):
    """DCT-domain spectral watermarking.

    Parameters
    ----------
    bits_per_layer:
        Signature bits embedded in each layer's high-frequency band.
    embedding_strength:
        Magnitude ε of the additive perturbation applied to each selected DCT
        coefficient.  SpecMark keeps this small so that the full-precision
        model quality is unaffected; on a quantized grid the same smallness is
        precisely why the watermark does not survive re-rounding.
    high_frequency_fraction:
        Fraction of the spectrum (counted from the highest frequency) that is
        eligible to carry signature bits.
    seed:
        Seed for choosing coefficient positions within the band.
    signature_seed:
        Seed for the Rademacher signature when none is supplied.
    engine:
        :class:`~repro.engine.WatermarkEngine` supplying the parallel layer
        executor; the process-wide default is used when omitted.  The DCT /
        inverse-DCT per layer dominates SpecMark's cost, and SciPy's FFT
        kernels release the GIL, so concurrent layers give a real speedup.
    """

    method_name = "specmark"

    def __init__(
        self,
        bits_per_layer: int = 12,
        embedding_strength: float = 0.01,
        high_frequency_fraction: float = 0.25,
        seed: int = 100,
        signature_seed: int = 1,
        engine: "Optional[WatermarkEngine]" = None,
    ) -> None:
        if bits_per_layer < 1:
            raise ValueError("bits_per_layer must be >= 1")
        if embedding_strength <= 0:
            raise ValueError("embedding_strength must be positive")
        if not 0.0 < high_frequency_fraction <= 1.0:
            raise ValueError("high_frequency_fraction must be in (0, 1]")
        self.bits_per_layer = int(bits_per_layer)
        self.embedding_strength = float(embedding_strength)
        self.high_frequency_fraction = float(high_frequency_fraction)
        self.seed = int(seed)
        self.signature_seed = int(signature_seed)
        self.engine = engine

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _band_positions(self, layer_size: int, rng: np.random.Generator) -> np.ndarray:
        """Choose coefficient positions inside the high-frequency band."""
        band_size = max(self.bits_per_layer, int(layer_size * self.high_frequency_fraction))
        band_start = layer_size - band_size
        positions = rng.choice(band_size, size=min(self.bits_per_layer, band_size), replace=False)
        return np.sort(band_start + positions)

    @staticmethod
    def _forward_transform(weights: np.ndarray) -> np.ndarray:
        """Orthonormal 1-D DCT-II of the flattened weight matrix."""
        return scipy_fft.dct(weights.reshape(-1).astype(np.float64), norm="ortho")

    @staticmethod
    def _inverse_transform(coefficients: np.ndarray, shape: Tuple[int, int]) -> np.ndarray:
        """Inverse DCT back to the weight domain."""
        return scipy_fft.idct(coefficients, norm="ortho").reshape(shape)

    # ------------------------------------------------------------------
    # Watermarker interface
    # ------------------------------------------------------------------
    def insert(
        self,
        model: QuantizedModel,
        activations: Optional[ActivationStats] = None,
        signature: Optional[np.ndarray] = None,
    ) -> Tuple[QuantizedModel, InsertionRecord]:
        layer_names = model.layer_names()
        total_bits = self.bits_per_layer * len(layer_names)
        if signature is None:
            signature = generate_signature(total_bits, self.signature_seed)
        else:
            signature = validate_signature(signature)
            if signature.size != total_bits:
                raise ValueError(
                    f"signature has {signature.size} bits, expected {total_bits}"
                )
        per_layer = split_signature_per_layer(signature, layer_names, self.bits_per_layer)
        watermarked = model.clone()

        def watermark_layer(name: str) -> Tuple[str, np.ndarray, np.ndarray]:
            layer = watermarked.get_layer(name)
            rng = new_rng(self.seed, "specmark", name)
            coefficients = self._forward_transform(layer.weight_int)
            layer_positions = self._band_positions(coefficients.size, rng)
            reference = coefficients[layer_positions].copy()
            bits = per_layer[name][: layer_positions.size]
            coefficients[layer_positions] += self.embedding_strength * bits
            # Back to the weight domain — and back onto the integer grid,
            # because the deployed embedded model stores integer levels.
            perturbed = self._inverse_transform(coefficients, layer.weight_int.shape)
            layer.weight_int = layer.grid.clip(np.round(perturbed)).astype(np.int64)
            return name, layer_positions, reference

        reference_coefficients: Dict[str, np.ndarray] = {}
        positions: Dict[str, np.ndarray] = {}
        for name, layer_positions, reference in self.map_layers(watermark_layer, layer_names):
            positions[name] = layer_positions
            reference_coefficients[name] = reference
        record = InsertionRecord(
            method=self.method_name,
            signature=signature,
            payload={
                "positions": positions,
                "reference_coefficients": reference_coefficients,
                "bits_per_layer": self.bits_per_layer,
                "layer_names": layer_names,
                "embedding_strength": self.embedding_strength,
            },
        )
        return watermarked, record

    def extract(self, suspect: QuantizedModel, record: InsertionRecord) -> ExtractionResult:
        positions: Dict[str, np.ndarray] = record.payload["positions"]
        reference: Dict[str, np.ndarray] = record.payload["reference_coefficients"]
        layer_names = record.payload["layer_names"]
        bits_per_layer = record.payload["bits_per_layer"]
        strength = record.payload["embedding_strength"]
        signature = validate_signature(record.signature)
        per_layer = split_signature_per_layer(signature, layer_names, bits_per_layer)

        def match_layer(name: str) -> Tuple[str, int, int]:
            layer_signature = per_layer[name]
            if name not in suspect.layers:
                return name, -1, layer_signature.size
            coefficients = self._forward_transform(suspect.get_layer(name).weight_int)
            layer_positions = positions[name]
            delta = coefficients[layer_positions] - reference[name]
            # A bit counts as extracted when the coefficient moved in the
            # signed direction by at least half the embedding strength.
            decoded = np.where(delta >= 0.5 * strength, 1, np.where(delta <= -0.5 * strength, -1, 0))
            return name, int(np.sum(decoded == layer_signature[: layer_positions.size])), layer_signature.size

        matched = 0
        total = 0
        per_layer_wer: Dict[str, float] = {}
        for name, layer_matched, layer_bits in self.map_layers(match_layer, layer_names):
            total += layer_bits
            if layer_matched < 0:
                per_layer_wer[name] = 0.0
                continue
            matched += layer_matched
            per_layer_wer[name] = 100.0 * layer_matched / layer_bits
        return ExtractionResult.from_counts(
            total_bits=total,
            matched_bits=matched,
            per_layer_wer=per_layer_wer,
            locations=positions,
        )
