"""Baseline watermarking schemes the paper compares EmMark against.

* :class:`~repro.core.baselines.random_wm.RandomWM` — inserts the signature
  at uniformly random weight positions (no scoring).  It extracts perfectly
  but damages low-bit models because it happily perturbs tiny and saturated
  weights.
* :class:`~repro.core.baselines.specmark.SpecMark` — the DCT-domain spectral
  watermark of Chen et al. (INTERSPEECH 2020), originally designed for
  full-precision speech models, applied to the quantized weights as the paper
  does.  The tiny high-frequency additions vanish when the weights are
  re-rounded to the integer grid, so extraction fails (0% WER) — reproducing
  the paper's negative result.
"""

from repro.core.baselines.random_wm import RandomWM
from repro.core.baselines.specmark import SpecMark

__all__ = ["RandomWM", "SpecMark"]
