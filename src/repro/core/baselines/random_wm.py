"""RandomWM: signature insertion at random weight positions.

The baseline from Section 5.1: the same ±1 signature payload as EmMark, the
same per-layer budget, but the positions are drawn uniformly at random from
each layer instead of through the scoring function.  Because the positions
are random they frequently land on

* tiny weights (where a ±1 step is a 100% relative change or a sign flip) and
* saturated weights (where the addition clips and both damages the weight and
  loses the signature bit),

which is why the paper observes clear perplexity degradation at INT4 while
EmMark stays lossless.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

import numpy as np

from repro.core.extraction import ExtractionResult
from repro.core.interface import InsertionRecord, Watermarker
from repro.core.signature import generate_signature, split_signature_per_layer, validate_signature
from repro.models.activations import ActivationStats
from repro.quant.base import QuantizedModel
from repro.utils.rng import new_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.engine import WatermarkEngine

__all__ = ["RandomWM"]


class RandomWM(Watermarker):
    """Random-position watermark insertion.

    Parameters
    ----------
    bits_per_layer:
        Signature bits inserted into each quantization layer (kept identical
        to the EmMark configuration it is compared against).
    seed:
        Seed for the random position selection.
    signature_seed:
        Seed for the Rademacher signature when none is given explicitly.
    avoid_clipping:
        When true, positions whose addition would clip at the grid boundary
        are re-rolled (gives RandomWM its best case: 100% WER, as observed in
        Table 1, while still damaging quality).  When false, clipped
        insertions silently lose their bit.
    engine:
        :class:`~repro.engine.WatermarkEngine` supplying the parallel layer
        executor; the process-wide default is used when omitted.  (RandomWM
        selects positions per layer with its own per-layer RNG stream, so
        layers are independent and safe to watermark concurrently.)
    """

    method_name = "random_wm"

    def __init__(
        self,
        bits_per_layer: int = 12,
        seed: int = 100,
        signature_seed: int = 1,
        avoid_clipping: bool = True,
        engine: "Optional[WatermarkEngine]" = None,
    ) -> None:
        if bits_per_layer < 1:
            raise ValueError("bits_per_layer must be >= 1")
        self.bits_per_layer = int(bits_per_layer)
        self.seed = int(seed)
        self.signature_seed = int(signature_seed)
        self.avoid_clipping = bool(avoid_clipping)
        self.engine = engine

    def _layer_positions(
        self, layer, layer_signature: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Uniformly random positions, optionally avoiding clipping ones."""
        flat = layer.weight_int.reshape(-1)
        count = layer_signature.size
        if count > flat.size:
            raise ValueError(
                f"layer {layer.name!r} has {flat.size} weights but {count} bits were requested"
            )
        if not self.avoid_clipping:
            return rng.choice(flat.size, size=count, replace=False)
        eligible = np.flatnonzero(
            ((flat + layer_signature.max()) <= layer.grid.qmax)
            & ((flat + layer_signature.min()) >= layer.grid.qmin)
        )
        # Fall back to unconstrained sampling if the layer is pathologically
        # saturated; matching the signature is then no longer guaranteed.
        if eligible.size < count:
            return rng.choice(flat.size, size=count, replace=False)
        return rng.choice(eligible, size=count, replace=False)

    def insert(
        self,
        model: QuantizedModel,
        activations: Optional[ActivationStats] = None,
        signature: Optional[np.ndarray] = None,
    ) -> Tuple[QuantizedModel, InsertionRecord]:
        layer_names = model.layer_names()
        total_bits = self.bits_per_layer * len(layer_names)
        if signature is None:
            signature = generate_signature(total_bits, self.signature_seed)
        else:
            signature = validate_signature(signature)
            if signature.size != total_bits:
                raise ValueError(
                    f"signature has {signature.size} bits, expected {total_bits}"
                )
        per_layer = split_signature_per_layer(signature, layer_names, self.bits_per_layer)
        watermarked = model.clone()
        reference = model.integer_weight_snapshot()

        def watermark_layer(name: str) -> Tuple[str, np.ndarray]:
            layer = watermarked.get_layer(name)
            rng = new_rng(self.seed, "random-wm", name)
            positions = self._layer_positions(layer, per_layer[name], rng)
            layer.add_to_weights(positions, per_layer[name])
            return name, np.asarray(positions, dtype=np.int64)

        locations: Dict[str, np.ndarray] = dict(self.map_layers(watermark_layer, layer_names))
        record = InsertionRecord(
            method=self.method_name,
            signature=signature,
            payload={
                "locations": locations,
                "reference_weights": reference,
                "bits_per_layer": self.bits_per_layer,
                "layer_names": layer_names,
            },
        )
        return watermarked, record

    def extract(self, suspect: QuantizedModel, record: InsertionRecord) -> ExtractionResult:
        locations: Dict[str, np.ndarray] = record.payload["locations"]
        reference: Dict[str, np.ndarray] = record.payload["reference_weights"]
        layer_names = record.payload["layer_names"]
        bits_per_layer = record.payload["bits_per_layer"]
        signature = validate_signature(record.signature)
        per_layer = split_signature_per_layer(signature, layer_names, bits_per_layer)

        def match_layer(name: str) -> Tuple[str, int, int]:
            layer_signature = per_layer[name]
            if name not in suspect.layers:
                return name, -1, layer_signature.size
            flat_suspect = suspect.get_layer(name).weight_int.reshape(-1)
            flat_reference = reference[name].reshape(-1)
            delta = flat_suspect[locations[name]] - flat_reference[locations[name]]
            return name, int(np.sum(delta == layer_signature)), layer_signature.size

        matched = 0
        total = 0
        per_layer_wer: Dict[str, float] = {}
        for name, layer_matched, layer_bits in self.map_layers(match_layer, layer_names):
            total += layer_bits
            if layer_matched < 0:
                per_layer_wer[name] = 0.0
                continue
            matched += layer_matched
            per_layer_wer[name] = 100.0 * layer_matched / layer_bits
        return ExtractionResult.from_counts(
            total_bits=total,
            matched_bits=matched,
            per_layer_wer=per_layer_wer,
            locations=locations,
        )
