"""Watermark signature generation.

The signature ``B = {b_1, …, b_|B|}`` is a sequence of Rademacher bits
(``b_i ∈ {−1, +1}`` each with probability 0.5, Section 4.2 "Watermarking
strength").  The owner either supplies an explicit sequence — for example an
encoding of a company identifier — or derives one from a secret signature
seed.

The insertion stage distributes the signature evenly across the quantization
layers (``|B| / n`` bits per layer), which
:func:`split_signature_per_layer` implements.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.utils.rng import new_rng

__all__ = [
    "generate_signature",
    "split_signature_per_layer",
    "signature_to_bits",
    "bits_to_signature",
    "validate_signature",
]


def generate_signature(length: int, seed: int) -> np.ndarray:
    """Draw a Rademacher signature of ``length`` bits from ``seed``.

    Each bit is −1 or +1 with equal probability; the sequence is a pure
    function of the seed so the owner can regenerate it at extraction time.
    """
    if length < 1:
        raise ValueError("signature length must be >= 1")
    rng = new_rng(seed, "signature")
    return rng.choice(np.array([-1, 1], dtype=np.int64), size=length)


def validate_signature(signature: Sequence[int]) -> np.ndarray:
    """Check that ``signature`` only contains ±1 and return it as an array."""
    array = np.asarray(signature, dtype=np.int64).reshape(-1)
    if array.size == 0:
        raise ValueError("signature must contain at least one bit")
    if not np.all(np.isin(array, (-1, 1))):
        raise ValueError("signature bits must be -1 or +1")
    return array


def split_signature_per_layer(
    signature: np.ndarray, layer_names: Sequence[str], bits_per_layer: int
) -> Dict[str, np.ndarray]:
    """Partition a signature evenly across the quantization layers.

    Parameters
    ----------
    signature:
        Full signature of length ``bits_per_layer × len(layer_names)``.
    layer_names:
        Quantization layers in canonical order.
    bits_per_layer:
        Bits assigned to each layer.

    Returns
    -------
    dict
        ``layer name -> (bits_per_layer,)`` slice of the signature, preserving
        the layer order.
    """
    signature = validate_signature(signature)
    expected = bits_per_layer * len(layer_names)
    if signature.size != expected:
        raise ValueError(
            f"signature has {signature.size} bits but {expected} are needed "
            f"({bits_per_layer} bits x {len(layer_names)} layers)"
        )
    return {
        name: signature[index * bits_per_layer : (index + 1) * bits_per_layer]
        for index, name in enumerate(layer_names)
    }


def signature_to_bits(signature: np.ndarray) -> List[int]:
    """Convert a ±1 signature to a 0/1 bit list (storage convenience)."""
    signature = validate_signature(signature)
    return [(1 if bit > 0 else 0) for bit in signature]


def bits_to_signature(bits: Sequence[int]) -> np.ndarray:
    """Inverse of :func:`signature_to_bits`."""
    array = np.asarray(bits, dtype=np.int64).reshape(-1)
    if not np.all(np.isin(array, (0, 1))):
        raise ValueError("bits must be 0 or 1")
    return np.where(array == 1, 1, -1).astype(np.int64)
