"""Watermark insertion (Section 4.1).

The insertion stage takes the original quantized model, the full-precision
activation statistics and an :class:`~repro.core.config.EmMarkConfig`, and

1. scores every quantized weight parameter of every layer
   (:mod:`repro.core.scoring`),
2. keeps the ``|B_c|`` best-scoring positions per layer as candidates,
3. sub-samples ``|B|/n`` of them per layer with the secret seed ``d``,
4. adds the corresponding signature bit to each selected integer weight
   (Equation 5: ``W'[L_i] = W[L_i] + b_i``), and
5. returns the watermarked model together with the owner's
   :class:`~repro.core.keys.WatermarkKey`.

The insertion is CPU-only and touches only integer weights, which is why the
paper reports sub-second per-layer insertion time and zero additional GPU
memory (Table 2).

Since the engine refactor the heavy lifting lives in
:class:`repro.engine.WatermarkEngine`: this module is the stable functional
facade, routing through the process-wide default engine so insertion shares
its memoized location plans and parallel layer executor with extraction,
ownership verification and the batch serving APIs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.config import EmMarkConfig
from repro.core.keys import WatermarkKey
from repro.engine.reports import InsertionReport, MultiOwnerInsertionResult
from repro.models.activations import ActivationStats
from repro.quant.base import QuantizedModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.allocator import SlotAllocator
    from repro.engine.engine import WatermarkEngine

__all__ = [
    "WatermarkLocation",
    "InsertionReport",
    "MultiOwnerInsertionResult",
    "insert_watermark",
    "insert_watermark_multi",
    "select_layer_locations",
]


def _engine(engine: "Optional[WatermarkEngine]" = None) -> "WatermarkEngine":
    """The engine to run on: an explicit one, or the process-wide default.

    Imported lazily — this module loads during ``repro.core`` package
    initialisation, before :mod:`repro.engine.engine` can be imported.
    """
    if engine is not None:
        return engine
    from repro.engine.engine import get_default_engine

    return get_default_engine()


@dataclass(frozen=True)
class WatermarkLocation:
    """One watermarked position: layer, flattened weight index, signature bit."""

    layer_name: str
    flat_index: int
    bit: int


def select_layer_locations(
    layer,
    channel_activations: np.ndarray,
    bits_needed: int,
    config: EmMarkConfig,
    occupied: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Select the watermark positions of one layer (flattened indices).

    Scoring, candidate pooling and the seeded sub-sampling all live in the
    engine's (cached) location planner, which both the insertion stage and
    the extraction stage call — guaranteeing that extraction reproduces the
    exact insertion-time locations when given the same inputs (reference
    weights, activations, seed, coefficients).  ``occupied`` lists flat
    indices already held by co-resident watermarks; the planner re-ranks
    past them (see :class:`repro.engine.SlotAllocator`).
    """
    return _engine().locations_for_layer(
        layer, channel_activations, bits_needed, config, occupied=occupied
    )


def insert_watermark(
    model: QuantizedModel,
    activations: ActivationStats,
    config: Optional[EmMarkConfig] = None,
    signature: Optional[np.ndarray] = None,
    in_place: bool = False,
    engine: "Optional[WatermarkEngine]" = None,
    occupied: "Optional[Union[SlotAllocator, Mapping[str, np.ndarray]]]" = None,
    owner: Optional[str] = None,
) -> Tuple[QuantizedModel, WatermarkKey, InsertionReport]:
    """Insert an EmMark watermark into ``model``.

    Parameters
    ----------
    model:
        The original quantized model (INT8 or INT4).
    activations:
        Full-precision activation statistics collected with
        :func:`repro.models.activations.collect_activation_stats`.
    config:
        Insertion hyper-parameters; defaults to
        :meth:`EmMarkConfig.scaled_for_model` for the given model.
    signature:
        Optional explicit ±1 signature of length
        ``bits_per_layer × num_layers``; generated from
        ``config.signature_seed`` when omitted.
    in_place:
        Modify ``model`` directly instead of watermarking a copy.
    engine:
        Run on a specific :class:`~repro.engine.WatermarkEngine`; the
        process-wide default engine (shared plan cache, shared thread pool)
        is used when omitted.
    occupied:
        Slots already held by co-resident watermarks — a
        :class:`repro.engine.SlotAllocator` or a plain ``{layer: indices}``
        mapping.  Planning re-ranks past them so the new signature lands on
        a disjoint pool; see :meth:`WatermarkEngine.insert`.
    owner:
        Label the new key's slots are claimed under when ``occupied`` is an
        allocator.

    Returns
    -------
    (watermarked_model, key, report)
        The watermarked model, the owner's key, and timing information
        (per-layer CPU cost plus the parallel wall-clock; see
        :class:`~repro.engine.reports.InsertionReport`).
    """
    return _engine(engine).insert(
        model,
        activations,
        config=config,
        signature=signature,
        in_place=in_place,
        occupied=occupied,
        owner=owner,
    )


def insert_watermark_multi(
    model: QuantizedModel,
    activations: ActivationStats,
    owners: "Union[int, Sequence[EmMarkConfig], Mapping[str, EmMarkConfig]]",
    signatures: Optional[Mapping[str, np.ndarray]] = None,
    in_place: bool = False,
    engine: "Optional[WatermarkEngine]" = None,
    allocator: "Optional[SlotAllocator]" = None,
) -> MultiOwnerInsertionResult:
    """Insert N independently keyed watermarks into **one** model.

    Functional facade over :meth:`WatermarkEngine.insert_multi`: every
    owner's signature is placed on a disjoint slot pool (collision-aware
    allocation), each key extracts independently at 100% WER from the
    returned model, and each key records its co-residents.  ``owners`` is an
    owner count or explicit per-owner configurations; see the engine method
    for the full parameter documentation.
    """
    return _engine(engine).insert_multi(
        model,
        activations,
        owners,
        signatures=signatures,
        in_place=in_place,
        allocator=allocator,
    )
