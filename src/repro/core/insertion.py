"""Watermark insertion (Section 4.1).

The insertion stage takes the original quantized model, the full-precision
activation statistics and an :class:`~repro.core.config.EmMarkConfig`, and

1. scores every quantized weight parameter of every layer
   (:mod:`repro.core.scoring`),
2. keeps the ``|B_c|`` best-scoring positions per layer as candidates,
3. sub-samples ``|B|/n`` of them per layer with the secret seed ``d``,
4. adds the corresponding signature bit to each selected integer weight
   (Equation 5: ``W'[L_i] = W[L_i] + b_i``), and
5. returns the watermarked model together with the owner's
   :class:`~repro.core.keys.WatermarkKey`.

The insertion is CPU-only and touches only integer weights, which is why the
paper reports sub-second per-layer insertion time and zero additional GPU
memory (Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import EmMarkConfig
from repro.core.keys import WatermarkKey
from repro.core.scoring import select_candidates
from repro.core.signature import generate_signature, split_signature_per_layer, validate_signature
from repro.models.activations import ActivationStats
from repro.quant.base import QuantizedModel
from repro.utils.logging import get_logger
from repro.utils.rng import new_rng

__all__ = ["WatermarkLocation", "InsertionReport", "insert_watermark", "select_layer_locations"]

logger = get_logger("core.insertion")


@dataclass(frozen=True)
class WatermarkLocation:
    """One watermarked position: layer, flattened weight index, signature bit."""

    layer_name: str
    flat_index: int
    bit: int


@dataclass
class InsertionReport:
    """Summary of one insertion run (used by the efficiency experiment)."""

    total_bits: int
    num_layers: int
    per_layer_seconds: List[float]
    candidate_pool_sizes: Dict[str, int]

    @property
    def total_seconds(self) -> float:
        """Wall-clock time spent scoring and inserting across all layers."""
        return float(sum(self.per_layer_seconds))

    @property
    def mean_seconds_per_layer(self) -> float:
        """Average insertion time per quantization layer (Table 2 metric)."""
        if not self.per_layer_seconds:
            return 0.0
        return float(np.mean(self.per_layer_seconds))


def select_layer_locations(
    layer,
    channel_activations: np.ndarray,
    bits_needed: int,
    config: EmMarkConfig,
) -> np.ndarray:
    """Select the watermark positions of one layer (flattened indices).

    Scoring, candidate pooling and the seeded sub-sampling all live in this
    one function, which both the insertion stage and the extraction stage
    call — guaranteeing that extraction reproduces the exact insertion-time
    locations when given the same inputs (reference weights, activations,
    seed, coefficients).
    """
    pool_size = config.candidate_pool_size(layer.num_weights)
    scores = select_candidates(
        layer,
        channel_activations,
        alpha=config.alpha,
        beta=config.beta,
        pool_size=pool_size,
        exclude_saturated=config.exclude_saturated,
    )
    if scores.num_candidates < bits_needed:
        raise ValueError(
            f"layer {layer.name!r} offers only {scores.num_candidates} candidate positions "
            f"but {bits_needed} signature bits were requested; lower bits_per_layer"
        )
    rng = new_rng(config.seed, "selection", layer.name)
    chosen = rng.choice(scores.candidate_indices, size=bits_needed, replace=False)
    return np.asarray(chosen, dtype=np.int64)


def insert_watermark(
    model: QuantizedModel,
    activations: ActivationStats,
    config: Optional[EmMarkConfig] = None,
    signature: Optional[np.ndarray] = None,
    in_place: bool = False,
) -> Tuple[QuantizedModel, WatermarkKey, InsertionReport]:
    """Insert an EmMark watermark into ``model``.

    Parameters
    ----------
    model:
        The original quantized model (INT8 or INT4).
    activations:
        Full-precision activation statistics collected with
        :func:`repro.models.activations.collect_activation_stats`.
    config:
        Insertion hyper-parameters; defaults to
        :meth:`EmMarkConfig.scaled_for_model` for the given model.
    signature:
        Optional explicit ±1 signature of length
        ``bits_per_layer × num_layers``; generated from
        ``config.signature_seed`` when omitted.
    in_place:
        Modify ``model`` directly instead of watermarking a copy.

    Returns
    -------
    (watermarked_model, key, report)
        The watermarked model, the owner's key, and timing information.
    """
    import time

    if config is None:
        config = EmMarkConfig.scaled_for_model(model)
    layer_names = model.layer_names()
    total_bits = config.total_bits(len(layer_names))
    if signature is None:
        signature = generate_signature(total_bits, config.signature_seed)
    else:
        signature = validate_signature(signature)
        if signature.size != total_bits:
            raise ValueError(
                f"signature has {signature.size} bits but the configuration requires {total_bits}"
            )
    per_layer_signature = split_signature_per_layer(signature, layer_names, config.bits_per_layer)

    watermarked = model if in_place else model.clone()
    reference_weights = model.integer_weight_snapshot()
    per_layer_seconds: List[float] = []
    pool_sizes: Dict[str, int] = {}

    missing_activations = [
        name for name in layer_names if name not in activations.mean_abs
    ]
    if missing_activations:
        raise ValueError(
            "activation statistics missing for layers: "
            f"{missing_activations[:4]} — collect stats with the full-precision model"
        )

    for name in layer_names:
        start = time.perf_counter()
        layer = watermarked.get_layer(name)
        channel_activations = activations.channel_saliency(name)
        layer_signature = per_layer_signature[name]
        locations = select_layer_locations(
            layer, channel_activations, layer_signature.size, config
        )
        layer.add_to_weights(locations, layer_signature)
        per_layer_seconds.append(time.perf_counter() - start)
        pool_sizes[name] = config.candidate_pool_size(layer.num_weights)

    outlier_columns = {
        name: layer.outlier_columns.copy()
        for name, layer in model.layers.items()
        if layer.outlier_columns is not None
    }
    key = WatermarkKey(
        signature=signature,
        config=config,
        reference_weights=reference_weights,
        activations=activations,
        layer_names=layer_names,
        method=model.method,
        bits=model.bits,
        model_name=model.config.name,
        outlier_columns=outlier_columns,
    )
    report = InsertionReport(
        total_bits=total_bits,
        num_layers=len(layer_names),
        per_layer_seconds=per_layer_seconds,
        candidate_pool_sizes=pool_sizes,
    )
    logger.debug(
        "inserted %d bits into %d layers of %s (%s INT%d) in %.3fs",
        total_bits,
        len(layer_names),
        model.config.name,
        model.method,
        model.bits,
        report.total_seconds,
    )
    return watermarked, key, report
