"""EmMark's parameter-scoring function (Equations 2–4).

For every quantized weight parameter ``W_i`` of a layer the score

``S = α · S_q + β · S_r``

combines

* ``S_q = |b_j / W_i| = 1 / |W_i|`` — quality preservation: weights with a
  large integer magnitude are insensitive to a ±1 addition (Equation 3).
  Weights at the minimum or maximum quantization level are excluded (the
  paper sets them to zero before scoring, which drives ``S_q`` to infinity);
  a watermark there would overflow the grid.
* ``S_r = |max(A_f) / (A_f_i − min(A_f))|`` — robustness: channels with large
  full-precision activations are salient, so a watermark there cannot be
  removed without disproportionately damaging the model (Equation 4).

Lower scores are better.  Per layer, the ``|B_c|`` lowest-scoring positions
form the candidate pool from which the secret seed sub-samples the final
watermark locations.

Two code paths expose the same arithmetic:

* :func:`quality_score`, :func:`robustness_score` and :func:`combined_score`
  materialize full ``(out_features, in_features)`` score matrices with
  ``+inf`` at excluded positions — convenient for inspection, tests and
  ablations.
* :func:`fused_scores` is the production kernel used by
  :func:`select_candidates` (and therefore by the watermark engine): it
  computes the combined score in a single pass, keeps the exclusions as a
  boolean mask instead of ``+inf``-laden float arrays, and never materializes
  a broadcast copy of the per-channel robustness vector.

:func:`select_candidates` ranks with :func:`topk_argsort_stable` — an
``np.argpartition`` top-k followed by a stable sort of only the candidate
pool — which is bit-for-bit equivalent to a full stable ``np.argsort`` while
doing O(n + k log k) work instead of O(n log n).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.quant.base import QuantizedLinear

__all__ = [
    "quality_score",
    "robustness_score",
    "robustness_channel_scores",
    "combined_score",
    "fused_scores",
    "topk_argsort_stable",
    "select_candidates",
    "LayerScores",
]

#: Score assigned to positions that must never carry a watermark bit.
EXCLUDED_SCORE = np.inf


def quality_score(layer: QuantizedLinear, exclude_saturated: bool = True) -> np.ndarray:
    """Quality-preservation score ``S_q`` for every weight of ``layer``.

    Returns an array of shape ``(out_features, in_features)``; excluded
    positions (zero weights, saturated weights, full-precision outlier
    columns) receive ``+inf``.
    """
    weight = layer.weight_int.astype(np.float64)
    magnitude = np.abs(weight)
    with np.errstate(divide="ignore"):
        scores = np.where(magnitude > 0, 1.0 / np.maximum(magnitude, 1e-12), EXCLUDED_SCORE)
    if exclude_saturated:
        scores = np.where(layer.saturated_mask(), EXCLUDED_SCORE, scores)
    scores = np.where(layer.quantized_mask(), scores, EXCLUDED_SCORE)
    return scores


def robustness_channel_scores(channel_activations: np.ndarray) -> np.ndarray:
    """Per-input-channel robustness score vector ``S_r`` (Equation 4).

    Returns a vector of length ``in_features``; the least salient channel
    (``A_f_i == min(A_f)``) receives ``+inf``.  All weights of a channel share
    the channel's score, so this vector is the whole robustness computation —
    broadcasting it over the weight matrix is only needed for display.
    """
    activations = np.asarray(channel_activations, dtype=np.float64).reshape(-1)
    a_max = float(np.max(activations))
    a_min = float(np.min(activations))
    delta = activations - a_min
    with np.errstate(divide="ignore"):
        return np.where(delta > 0, np.abs(a_max / delta), EXCLUDED_SCORE)


def robustness_score(
    layer: QuantizedLinear, channel_activations: np.ndarray
) -> np.ndarray:
    """Robustness score ``S_r`` broadcast over the weights of ``layer``.

    ``channel_activations`` is the full-precision per-input-channel activation
    magnitude ``A_f`` of the layer.  All weights in the same input channel
    share the channel's score; smaller scores mark more salient channels.
    """
    activations = np.asarray(channel_activations, dtype=np.float64).reshape(-1)
    if activations.size != layer.in_features:
        raise ValueError(
            f"activation vector has {activations.size} channels but layer "
            f"{layer.name!r} has {layer.in_features} input channels"
        )
    channel_scores = robustness_channel_scores(activations)
    return np.broadcast_to(channel_scores[None, :], layer.weight_int.shape).copy()


def fused_scores(
    layer: QuantizedLinear,
    channel_activations: np.ndarray,
    alpha: float,
    beta: float,
    exclude_saturated: bool = True,
) -> Tuple[np.ndarray, np.ndarray]:
    """Combined score ``S = α·S_q + β·S_r`` as ``(flat_scores, flat_valid)``.

    The fused kernel allocates a single ``(out×in,)`` float score array (plus
    one boolean validity mask) instead of the three full matrices the naive
    ``α·S_q + β·S_r`` formulation materializes:

    * ``S_q`` is computed as ``α / |W|`` directly into the output array,
    * the per-channel ``S_r`` vector is broadcast-*added* in place (never
      expanded into a matrix), and
    * every exclusion rule (non-quantized outlier columns, saturated levels,
      zero weights when α > 0, the minimum-activation channel when β > 0) is
      tracked in the boolean mask rather than as ``+inf`` sentinel floats.

    Values at invalid positions are unspecified; consumers must apply the
    mask.  :func:`combined_score` is the materialized (``+inf``-filled) view
    of this kernel, so both paths agree bit-for-bit on valid positions.
    """
    if alpha < 0 or beta < 0:
        raise ValueError("alpha and beta must be non-negative")
    activations = np.asarray(channel_activations, dtype=np.float64).reshape(-1)
    if activations.size != layer.in_features:
        raise ValueError(
            f"activation vector has {activations.size} channels but layer "
            f"{layer.name!r} has {layer.in_features} input channels"
        )
    weight = layer.weight_int
    valid = layer.quantized_mask()
    if exclude_saturated:
        valid &= ~layer.saturated_mask()
    if alpha > 0:
        magnitude = np.abs(weight).astype(np.float64)
        valid &= magnitude > 0
        with np.errstate(divide="ignore"):
            scores = alpha / magnitude
    else:
        scores = np.zeros(weight.shape, dtype=np.float64)
    if beta > 0:
        channel = robustness_channel_scores(activations)
        finite_channel = np.isfinite(channel)
        valid &= finite_channel[None, :]
        # In-place broadcast add: only the (in_features,) vector is allocated.
        scores += beta * np.where(finite_channel, channel, 0.0)[None, :]
    return scores.reshape(-1), valid.reshape(-1)


def combined_score(
    layer: QuantizedLinear,
    channel_activations: np.ndarray,
    alpha: float,
    beta: float,
    exclude_saturated: bool = True,
) -> np.ndarray:
    """Combined score ``S = α·S_q + β·S_r`` (Equation 2), materialized.

    Exclusion (saturated / zero / non-quantized positions) is applied to the
    combined score so it holds even when ``alpha`` is zero: a zero coefficient
    drops its score term entirely rather than multiplying an infinite
    exclusion value by zero (which would produce NaN).  The S_q-driven
    exclusion of zero weights therefore only applies when α > 0, while the
    physical exclusions — saturated levels and full-precision outlier columns
    — are always enforced.

    This is the inspection-friendly view of :func:`fused_scores`: excluded
    positions are filled with ``+inf`` and the result has the layer's
    ``(out_features, in_features)`` shape.
    """
    flat_scores, flat_valid = fused_scores(
        layer, channel_activations, alpha, beta, exclude_saturated=exclude_saturated
    )
    return np.where(flat_valid, flat_scores, EXCLUDED_SCORE).reshape(layer.weight_int.shape)


def topk_argsort_stable(values: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` smallest ``values`` in stable ascending order.

    Equivalent to ``np.argsort(values, kind="stable")[:k]`` — including the
    tie-breaking-by-original-index behaviour of a stable sort — but computed
    with ``np.argpartition`` plus a stable sort of only the selected pool:
    O(n + k log k) instead of O(n log n).

    ``values`` must be free of NaN (the callers operate on the finite-score
    subset).
    """
    values = np.asarray(values)
    n = values.size
    if k >= n:
        return np.argsort(values, kind="stable")
    if k <= 0:
        return np.empty(0, dtype=np.int64)
    partition = np.argpartition(values, k - 1)[:k]
    # argpartition breaks ties arbitrarily at the pool boundary; rebuild the
    # pool so elements equal to the k-th smallest value are admitted in
    # index order, exactly as a stable full sort would.
    threshold = values[partition].max()
    below = np.flatnonzero(values < threshold)
    ties = np.flatnonzero(values == threshold)[: k - below.size]
    pool = np.concatenate([below, ties])
    order = np.argsort(values[pool], kind="stable")
    return pool[order]


@dataclass(frozen=True)
class LayerScores:
    """Scores and candidate pool of a single quantization layer.

    Attributes
    ----------
    layer_name:
        Which layer the scores belong to.
    candidate_indices:
        Flattened indices of the ``|B_c|`` best (lowest-score) positions, in
        ascending-score order.
    flat_scores, flat_valid:
        The fused kernel's outputs: combined scores and eligibility mask over
        the flattened weight matrix (values at invalid positions are
        unspecified).
    shape:
        The layer's ``(out_features, in_features)`` shape.
    """

    layer_name: str
    candidate_indices: np.ndarray
    flat_scores: np.ndarray = field(repr=False, default=None)
    flat_valid: np.ndarray = field(repr=False, default=None)
    shape: Tuple[int, int] = (0, 0)

    @property
    def num_candidates(self) -> int:
        """Size of the candidate pool."""
        return int(self.candidate_indices.size)

    @property
    def scores(self) -> np.ndarray:
        """The combined score matrix (``+inf`` marks excluded positions).

        Materialized lazily from the fused representation — the hot path
        (engine planning) never touches it.
        """
        cached = getattr(self, "_scores_cache", None)
        if cached is None:
            cached = np.where(self.flat_valid, self.flat_scores, EXCLUDED_SCORE).reshape(
                self.shape
            )
            object.__setattr__(self, "_scores_cache", cached)
        return cached


def select_candidates(
    layer: QuantizedLinear,
    channel_activations: np.ndarray,
    alpha: float,
    beta: float,
    pool_size: int,
    exclude_saturated: bool = True,
    rng: Optional[np.random.Generator] = None,
) -> LayerScores:
    """Build the candidate pool of one layer.

    Parameters
    ----------
    layer:
        The quantized layer being scored.
    channel_activations:
        Full-precision per-channel activations ``A_f`` of the layer.
    alpha, beta:
        Scoring coefficients.
    pool_size:
        Requested ``|B_c|``; silently reduced if fewer finite-score positions
        exist.
    exclude_saturated:
        Whether saturated levels are excluded (paper behaviour).
    rng:
        Optional generator used to break ties among equal scores randomly;
        when omitted ties are broken by index order (deterministic).

    Returns
    -------
    LayerScores
        Scores plus the flattened candidate indices sorted by ascending score.
    """
    if pool_size < 1:
        raise ValueError("pool_size must be >= 1")
    flat_scores, flat_valid = fused_scores(
        layer, channel_activations, alpha, beta, exclude_saturated=exclude_saturated
    )
    finite = np.flatnonzero(flat_valid)
    if finite.size == 0:
        raise ValueError(
            f"layer {layer.name!r} has no eligible watermark positions "
            "(every weight is saturated, zero or full-precision)"
        )
    pool_size = min(pool_size, finite.size)
    finite_scores = flat_scores[finite]
    if rng is not None:
        # Random tie-breaking: add an infinitesimal jitter ranking.
        finite_scores = finite_scores + rng.random(finite_scores.size) * 1e-12
    order = topk_argsort_stable(finite_scores, pool_size)
    candidates = finite[order]
    return LayerScores(
        layer_name=layer.name,
        candidate_indices=candidates,
        flat_scores=flat_scores,
        flat_valid=flat_valid,
        shape=layer.weight_int.shape,
    )
