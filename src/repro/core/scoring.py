"""EmMark's parameter-scoring function (Equations 2–4).

For every quantized weight parameter ``W_i`` of a layer the score

``S = α · S_q + β · S_r``

combines

* ``S_q = |b_j / W_i| = 1 / |W_i|`` — quality preservation: weights with a
  large integer magnitude are insensitive to a ±1 addition (Equation 3).
  Weights at the minimum or maximum quantization level are excluded (the
  paper sets them to zero before scoring, which drives ``S_q`` to infinity);
  a watermark there would overflow the grid.
* ``S_r = |max(A_f) / (A_f_i − min(A_f))|`` — robustness: channels with large
  full-precision activations are salient, so a watermark there cannot be
  removed without disproportionately damaging the model (Equation 4).

Lower scores are better.  Per layer, the ``|B_c|`` lowest-scoring positions
form the candidate pool from which the secret seed sub-samples the final
watermark locations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.quant.base import QuantizedLinear

__all__ = [
    "quality_score",
    "robustness_score",
    "combined_score",
    "select_candidates",
    "LayerScores",
]

#: Score assigned to positions that must never carry a watermark bit.
EXCLUDED_SCORE = np.inf


def quality_score(layer: QuantizedLinear, exclude_saturated: bool = True) -> np.ndarray:
    """Quality-preservation score ``S_q`` for every weight of ``layer``.

    Returns an array of shape ``(out_features, in_features)``; excluded
    positions (zero weights, saturated weights, full-precision outlier
    columns) receive ``+inf``.
    """
    weight = layer.weight_int.astype(np.float64)
    magnitude = np.abs(weight)
    with np.errstate(divide="ignore"):
        scores = np.where(magnitude > 0, 1.0 / np.maximum(magnitude, 1e-12), EXCLUDED_SCORE)
    if exclude_saturated:
        scores = np.where(layer.saturated_mask(), EXCLUDED_SCORE, scores)
    scores = np.where(layer.quantized_mask(), scores, EXCLUDED_SCORE)
    return scores


def robustness_score(
    layer: QuantizedLinear, channel_activations: np.ndarray
) -> np.ndarray:
    """Robustness score ``S_r`` broadcast over the weights of ``layer``.

    ``channel_activations`` is the full-precision per-input-channel activation
    magnitude ``A_f`` of the layer.  All weights in the same input channel
    share the channel's score; smaller scores mark more salient channels.
    """
    activations = np.asarray(channel_activations, dtype=np.float64).reshape(-1)
    if activations.size != layer.in_features:
        raise ValueError(
            f"activation vector has {activations.size} channels but layer "
            f"{layer.name!r} has {layer.in_features} input channels"
        )
    a_max = float(np.max(activations))
    a_min = float(np.min(activations))
    delta = activations - a_min
    with np.errstate(divide="ignore"):
        channel_scores = np.where(delta > 0, np.abs(a_max / delta), EXCLUDED_SCORE)
    return np.broadcast_to(channel_scores[None, :], layer.weight_int.shape).copy()


def combined_score(
    layer: QuantizedLinear,
    channel_activations: np.ndarray,
    alpha: float,
    beta: float,
    exclude_saturated: bool = True,
) -> np.ndarray:
    """Combined score ``S = α·S_q + β·S_r`` (Equation 2).

    Exclusion (saturated / zero / non-quantized positions) is applied to the
    combined score so it holds even when ``alpha`` is zero.
    """
    if alpha < 0 or beta < 0:
        raise ValueError("alpha and beta must be non-negative")
    # A zero coefficient must drop its score entirely rather than multiply an
    # infinite exclusion value by zero (which would produce NaN).  The
    # S_q-driven exclusion of zero weights therefore only applies when α > 0,
    # while the physical exclusions — saturated levels and full-precision
    # outlier columns — are always enforced on the combined score.
    s_q = quality_score(layer, exclude_saturated=exclude_saturated) if alpha > 0 else 0.0
    s_r = robustness_score(layer, channel_activations) if beta > 0 else 0.0
    total = alpha * s_q + beta * s_r
    total = np.broadcast_to(total, layer.weight_int.shape).copy()
    total = np.where(layer.quantized_mask(), total, EXCLUDED_SCORE)
    if exclude_saturated:
        total = np.where(layer.saturated_mask(), EXCLUDED_SCORE, total)
    return total


@dataclass(frozen=True)
class LayerScores:
    """Scores and candidate pool of a single quantization layer.

    Attributes
    ----------
    layer_name:
        Which layer the scores belong to.
    scores:
        The combined score ``S`` for every weight (``+inf`` marks excluded
        positions).
    candidate_indices:
        Flattened indices of the ``|B_c|`` best (lowest-score) positions, in
        ascending-score order.
    """

    layer_name: str
    scores: np.ndarray
    candidate_indices: np.ndarray

    @property
    def num_candidates(self) -> int:
        """Size of the candidate pool."""
        return int(self.candidate_indices.size)


def select_candidates(
    layer: QuantizedLinear,
    channel_activations: np.ndarray,
    alpha: float,
    beta: float,
    pool_size: int,
    exclude_saturated: bool = True,
    rng: Optional[np.random.Generator] = None,
) -> LayerScores:
    """Build the candidate pool of one layer.

    Parameters
    ----------
    layer:
        The quantized layer being scored.
    channel_activations:
        Full-precision per-channel activations ``A_f`` of the layer.
    alpha, beta:
        Scoring coefficients.
    pool_size:
        Requested ``|B_c|``; silently reduced if fewer finite-score positions
        exist.
    exclude_saturated:
        Whether saturated levels are excluded (paper behaviour).
    rng:
        Optional generator used to break ties among equal scores randomly;
        when omitted ties are broken by index order (deterministic).

    Returns
    -------
    LayerScores
        Scores plus the flattened candidate indices sorted by ascending score.
    """
    if pool_size < 1:
        raise ValueError("pool_size must be >= 1")
    scores = combined_score(
        layer, channel_activations, alpha, beta, exclude_saturated=exclude_saturated
    )
    flat = scores.reshape(-1)
    finite = np.flatnonzero(np.isfinite(flat))
    if finite.size == 0:
        raise ValueError(
            f"layer {layer.name!r} has no eligible watermark positions "
            "(every weight is saturated, zero or full-precision)"
        )
    pool_size = min(pool_size, finite.size)
    finite_scores = flat[finite]
    if rng is not None:
        # Random tie-breaking: add an infinitesimal jitter ranking.
        jitter = rng.random(finite_scores.size) * 1e-12
        order = np.argsort(finite_scores + jitter, kind="stable")
    else:
        order = np.argsort(finite_scores, kind="stable")
    candidates = finite[order[:pool_size]]
    return LayerScores(layer_name=layer.name, scores=scores, candidate_indices=candidates)
