"""EmMark insertion hyper-parameters.

The configuration mirrors Section 5.1 of the paper:

* signature bits per quantization layer (300 for INT8, 40 for INT4),
* the scoring coefficients α and β (0.5 / 0.5),
* the random seed ``d`` used for sub-sampling candidates (100),
* the candidate-pool ratio ``|B_c|·n / |B|`` (50 for models below 6.7B
  parameters, 60 for larger ones).

The simulated models are orders of magnitude smaller than the real
checkpoints, so :meth:`EmMarkConfig.scaled_for_model` provides the equivalent
configuration scaled to the simulated layer sizes while keeping every ratio
and rule intact.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

__all__ = ["EmMarkConfig"]

#: Paper defaults (Section 5.1).
PAPER_BITS_PER_LAYER_INT8 = 300
PAPER_BITS_PER_LAYER_INT4 = 40
PAPER_POOL_RATIO_SMALL = 50.0
PAPER_POOL_RATIO_LARGE = 60.0
PAPER_SEED = 100
PAPER_ALPHA = 0.5
PAPER_BETA = 0.5
#: Model-size threshold (billions of parameters) at which the paper switches
#: from the small to the large candidate-pool ratio.
POOL_RATIO_THRESHOLD_BILLIONS = 6.7


@dataclass(frozen=True)
class EmMarkConfig:
    """Hyper-parameters of one EmMark insertion.

    Attributes
    ----------
    bits_per_layer:
        Number of signature bits inserted into every quantization layer
        (the paper's ``|B| / n``).
    alpha:
        Weight of the quality-preservation score ``S_q``.
    beta:
        Weight of the robustness score ``S_r``.
    seed:
        The owner's secret random seed ``d`` used to sub-sample the final
        watermark locations from the candidate pool.
    candidate_pool_ratio:
        The paper's ``|B_c|·n / |B|``: the per-layer candidate pool holds
        ``candidate_pool_ratio × bits_per_layer`` positions.
    max_candidate_fraction:
        Safety cap on the candidate pool as a fraction of the layer's weight
        count.  The simulated layers are small; without the cap a paper-sized
        pool could cover most of a layer and the "strategic selection" would
        degenerate into random selection.
    signature_seed:
        Seed used to draw the Rademacher signature when the owner does not
        supply an explicit bit sequence.
    exclude_saturated:
        Exclude weights already at the minimum/maximum quantization level
        (the paper sets their ``S_q`` to infinity); disabling this is only
        useful for ablation studies.
    """

    bits_per_layer: int = PAPER_BITS_PER_LAYER_INT4
    alpha: float = PAPER_ALPHA
    beta: float = PAPER_BETA
    seed: int = PAPER_SEED
    candidate_pool_ratio: float = PAPER_POOL_RATIO_SMALL
    max_candidate_fraction: float = 0.25
    signature_seed: int = 1
    exclude_saturated: bool = True

    def __post_init__(self) -> None:
        if self.bits_per_layer < 1:
            raise ValueError("bits_per_layer must be >= 1")
        if self.alpha < 0 or self.beta < 0:
            raise ValueError("alpha and beta must be non-negative")
        if self.alpha == 0 and self.beta == 0:
            raise ValueError("alpha and beta cannot both be zero")
        if self.candidate_pool_ratio < 1:
            raise ValueError("candidate_pool_ratio must be >= 1")
        if not 0.0 < self.max_candidate_fraction <= 1.0:
            raise ValueError("max_candidate_fraction must be in (0, 1]")

    # -- derived quantities ----------------------------------------------------
    def candidate_pool_size(self, layer_weight_count: int) -> int:
        """Size of the per-layer candidate pool ``|B_c|``.

        The pool is ``candidate_pool_ratio × bits_per_layer`` positions,
        capped both by ``max_candidate_fraction`` of the layer and by the
        layer size itself, and never smaller than ``bits_per_layer``.
        """
        target = int(round(self.candidate_pool_ratio * self.bits_per_layer))
        cap = max(self.bits_per_layer, int(layer_weight_count * self.max_candidate_fraction))
        pool = max(self.bits_per_layer, min(target, cap))
        return min(pool, layer_weight_count)

    def total_bits(self, num_layers: int) -> int:
        """Total signature length ``|B|`` for an ``num_layers``-layer model."""
        return self.bits_per_layer * num_layers

    def with_overrides(self, **kwargs) -> "EmMarkConfig":
        """Return a copy with selected fields replaced."""
        return replace(self, **kwargs)

    # -- constructors ----------------------------------------------------------
    @classmethod
    def paper_defaults(
        cls, bits: int, virtual_params_billions: Optional[float] = None
    ) -> "EmMarkConfig":
        """The exact configuration of Section 5.1 for a given precision.

        Parameters
        ----------
        bits:
            Quantization precision (8 or 4).
        virtual_params_billions:
            Size of the (real) model being watermarked; selects the 50 vs 60
            candidate-pool ratio.  Defaults to the small-model rule.
        """
        if bits == 8:
            bits_per_layer = PAPER_BITS_PER_LAYER_INT8
        elif bits == 4:
            bits_per_layer = PAPER_BITS_PER_LAYER_INT4
        else:
            raise ValueError("the paper only configures INT8 and INT4 insertion")
        ratio = PAPER_POOL_RATIO_SMALL
        if (
            virtual_params_billions is not None
            and virtual_params_billions >= POOL_RATIO_THRESHOLD_BILLIONS
        ):
            ratio = PAPER_POOL_RATIO_LARGE
        return cls(
            bits_per_layer=bits_per_layer,
            alpha=PAPER_ALPHA,
            beta=PAPER_BETA,
            seed=PAPER_SEED,
            candidate_pool_ratio=ratio,
        )

    @classmethod
    def scaled_for_model(
        cls,
        quantized_model,
        bits_per_layer: Optional[int] = None,
        **overrides,
    ) -> "EmMarkConfig":
        """Paper configuration scaled to a simulated quantized model.

        The real INT8/INT4 insertions place 300/40 bits into layers holding
        millions of weights.  The simulated layers hold a few thousand, so the
        scaled configuration keeps the *ratio of INT8 to INT4 payload* (7.5:1
        becomes 24:12 by default) and the candidate-pool rule, while choosing
        per-layer bit counts that stay a small fraction of the layer.

        Parameters
        ----------
        quantized_model:
            The :class:`~repro.quant.base.QuantizedModel` about to be
            watermarked (its precision and virtual size select the defaults).
        bits_per_layer:
            Explicit override of the per-layer payload.
        overrides:
            Any other :class:`EmMarkConfig` field.
        """
        bits = quantized_model.bits
        billions = quantized_model.config.virtual_params_billions
        if bits_per_layer is None:
            bits_per_layer = 24 if bits == 8 else 12
        ratio = PAPER_POOL_RATIO_SMALL
        if billions >= POOL_RATIO_THRESHOLD_BILLIONS:
            ratio = PAPER_POOL_RATIO_LARGE
        config = cls(
            bits_per_layer=bits_per_layer,
            alpha=PAPER_ALPHA,
            beta=PAPER_BETA,
            seed=PAPER_SEED,
            candidate_pool_ratio=ratio,
        )
        if overrides:
            config = config.with_overrides(**overrides)
        return config
