"""Fine-tuning substrate.

Two very different fine-tuning flavours appear in the paper:

* **Full-precision fine-tuning before quantization** — the integrity study
  (Table 4) builds two "independent" models by fine-tuning the base model on
  the Alpaca-sim and WikiText-sim corpora and then quantizing them; EmMark
  must *not* find its signature in them.  :mod:`repro.finetune.full` provides
  this.
* **LoRA adapters on the quantized model** — the paper argues (Section 3 and
  5.3) that QLoRA-style fine-tuning cannot remove the watermark because it
  leaves the quantized weights untouched and only adds low-rank adapters.
  :mod:`repro.finetune.lora` implements the adapters so the claim can be
  checked mechanically.
"""

from repro.finetune.full import FineTuneConfig, fine_tune_full_precision
from repro.finetune.lora import LoRAAdapter, LoRAConfig, LoRAFineTuner

__all__ = [
    "FineTuneConfig",
    "fine_tune_full_precision",
    "LoRAAdapter",
    "LoRAConfig",
    "LoRAFineTuner",
]
