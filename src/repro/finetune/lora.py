"""LoRA adapters for quantized models (the QLoRA argument).

Section 3 of the paper rules out fine-tuning as a watermark-removal attack:
"fine-tuning quantized models like QLoRA does not change quantized weights
but adds additional linear low-rank adapters to learn new features."  This
module implements exactly that mechanism so the claim can be demonstrated
rather than asserted:

* :class:`LoRAAdapter` — a rank-``r`` additive adapter ``ΔW = B A`` attached
  to one quantized linear layer (the base integer weights stay frozen).
* :class:`LoRAFineTuner` — trains the adapters of every quantized layer on a
  new corpus with the usual next-token loss, then materializes a model whose
  effective weights are ``dequant(W_q) + B A``.

Because the integer weights ``W_q`` are untouched, the watermark extraction —
which reads ``W_q`` directly from the deployed tensors — still recovers every
signature bit after LoRA fine-tuning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.data.corpus import TokenCorpus
from repro.models.parameters import Parameter
from repro.models.training import AdamOptimizer, sample_batch
from repro.models.transformer import TransformerLM
from repro.quant.base import QuantizedModel
from repro.utils.logging import get_logger
from repro.utils.rng import new_rng

__all__ = ["LoRAConfig", "LoRAAdapter", "LoRAFineTuner"]

logger = get_logger("finetune.lora")


@dataclass(frozen=True)
class LoRAConfig:
    """LoRA fine-tuning hyper-parameters.

    Attributes
    ----------
    rank:
        Adapter rank ``r``.
    alpha:
        LoRA scaling; the adapter contributes ``(alpha / rank) · B A``.
    steps, batch_size, sequence_length, learning_rate:
        Optimization settings for adapter training.
    seed:
        Seed for adapter initialisation and batch sampling.
    """

    rank: int = 4
    alpha: float = 8.0
    steps: int = 60
    batch_size: int = 8
    sequence_length: int = 33
    learning_rate: float = 5e-3
    seed: int = 23


class LoRAAdapter:
    """Additive low-rank adapter for one linear layer.

    The adapter holds matrices ``A`` of shape ``(rank, in_features)`` and
    ``B`` of shape ``(out_features, rank)``; the effective weight becomes
    ``W + (alpha / rank) · B A``.  Following the LoRA paper, ``A`` is
    initialised with small Gaussian noise and ``B`` with zeros so the adapter
    starts as the identity (no change).
    """

    def __init__(
        self,
        layer_name: str,
        out_features: int,
        in_features: int,
        rank: int,
        alpha: float,
        rng: np.random.Generator,
    ) -> None:
        if rank < 1:
            raise ValueError("rank must be >= 1")
        self.layer_name = layer_name
        self.rank = int(rank)
        self.alpha = float(alpha)
        self.a = Parameter(rng.normal(0.0, 0.02, size=(rank, in_features)), name=f"{layer_name}.lora_a")
        self.b = Parameter(np.zeros((out_features, rank)), name=f"{layer_name}.lora_b")

    @property
    def scaling(self) -> float:
        """The ``alpha / rank`` multiplier applied to ``B A``."""
        return self.alpha / self.rank

    def delta_weight(self) -> np.ndarray:
        """The dense additive update ``(alpha / rank) · B A``."""
        return self.scaling * (self.b.value @ self.a.value)

    def parameters(self) -> List[Parameter]:
        """Trainable parameters of the adapter."""
        return [self.a, self.b]

    def accumulate_gradient_from_weight_grad(self, weight_grad: np.ndarray) -> None:
        """Convert a dense weight gradient into adapter gradients.

        If the loss gradient with respect to the effective weight is ``G``,
        then ``∂L/∂B = s · G Aᵀ`` and ``∂L/∂A = s · Bᵀ G`` with ``s`` the LoRA
        scaling.
        """
        self.b.accumulate_grad(self.scaling * (weight_grad @ self.a.value.T))
        self.a.accumulate_grad(self.scaling * (self.b.value.T @ weight_grad))


class LoRAFineTuner:
    """Trains LoRA adapters on top of a (frozen) quantized model.

    Parameters
    ----------
    quantized_model:
        The deployed quantized model.  Its integer weights are never written.
    config:
        LoRA hyper-parameters.
    """

    def __init__(self, quantized_model: QuantizedModel, config: Optional[LoRAConfig] = None) -> None:
        self.quantized_model = quantized_model
        self.config = config or LoRAConfig()
        rng = new_rng(self.config.seed, "lora-init")
        self.adapters: Dict[str, LoRAAdapter] = {}
        for name, layer in quantized_model.layers.items():
            self.adapters[name] = LoRAAdapter(
                layer_name=name,
                out_features=layer.out_features,
                in_features=layer.in_features,
                rank=self.config.rank,
                alpha=self.config.alpha,
                rng=rng,
            )

    # ------------------------------------------------------------------
    def materialize(self) -> TransformerLM:
        """Full-precision model with ``effective_weight + adapter`` per layer."""
        model = self.quantized_model.materialize()
        for name, adapter in self.adapters.items():
            linear = model.get_linear(name)
            linear.weight.value = linear.weight.value + adapter.delta_weight()
        return model

    def fine_tune(self, corpus: TokenCorpus) -> Dict[str, List[float]]:
        """Train the adapters on ``corpus`` (quantized weights stay frozen).

        Each step materializes the effective model, runs the usual forward /
        backward pass, and then projects the dense weight gradients of the
        adapted layers onto the adapter factors.  Only adapter parameters are
        updated.
        """
        config = self.config
        adapter_parameters = [p for adapter in self.adapters.values() for p in adapter.parameters()]
        optimizer = AdamOptimizer(adapter_parameters, learning_rate=config.learning_rate)
        rng = new_rng(config.seed, "lora-batches")
        history: Dict[str, List[float]] = {"loss": []}
        for step in range(config.steps):
            model = self.materialize()
            batch = sample_batch(corpus, config.batch_size, config.sequence_length, rng)
            model.zero_grad()
            loss = model.loss_and_gradients(batch)
            optimizer.zero_grad()
            for name, adapter in self.adapters.items():
                weight_grad = model.get_linear(name).weight.grad
                adapter.accumulate_gradient_from_weight_grad(weight_grad)
            optimizer.step()
            history["loss"].append(loss)
        logger.debug(
            "LoRA fine-tuning finished: loss %.4f -> %.4f",
            history["loss"][0] if history["loss"] else float("nan"),
            history["loss"][-1] if history["loss"] else float("nan"),
        )
        return history

    def quantized_weights_unchanged(self, reference: QuantizedModel) -> bool:
        """Check that fine-tuning did not touch any integer weight.

        This is the mechanical verification of the paper's QLoRA argument;
        it should always return True because adapters live outside the
        quantized tensors.
        """
        for name, layer in self.quantized_model.layers.items():
            if not np.array_equal(layer.weight_int, reference.get_layer(name).weight_int):
                return False
        return True
