"""Full-precision fine-tuning (pre-quantization).

Used by the integrity experiment (Table 4): starting from the pre-trained
base model, fine-tune on a different corpus (Alpaca-sim or WikiText-sim) and
then quantize.  The resulting models are legitimate, independently produced
checkpoints of the same architecture — EmMark must report (near-)zero WER on
them, otherwise the scheme would accuse innocent parties.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.data.corpus import TokenCorpus
from repro.models.training import TrainingConfig, train_language_model
from repro.models.transformer import TransformerLM

__all__ = ["FineTuneConfig", "fine_tune_full_precision"]


@dataclass(frozen=True)
class FineTuneConfig:
    """Hyper-parameters of a full-precision fine-tuning run.

    The defaults are deliberately lighter than pre-training: fine-tuning
    should *shift* the weights appreciably (so the fine-tuned model is a
    genuinely different checkpoint) without erasing the base model's language
    ability, mirroring how the paper fine-tunes OPT-2.7B on a 4k Alpaca
    subset.
    """

    steps: int = 120
    batch_size: int = 8
    sequence_length: int = 33
    learning_rate: float = 3e-3
    seed: int = 17


def fine_tune_full_precision(
    model: TransformerLM,
    corpus: TokenCorpus,
    config: Optional[FineTuneConfig] = None,
    in_place: bool = False,
) -> tuple[TransformerLM, Dict[str, List[float]]]:
    """Fine-tune ``model`` on ``corpus`` and return the fine-tuned model.

    Parameters
    ----------
    model:
        Full-precision base model.
    corpus:
        Fine-tuning token stream (e.g. ``AlpacaSim.as_corpus()``).
    config:
        Fine-tuning hyper-parameters.
    in_place:
        Mutate ``model`` instead of fine-tuning a copy.

    Returns
    -------
    (model, history)
        The fine-tuned model and the training-loss history.
    """
    config = config or FineTuneConfig()
    target = model if in_place else model.clone()
    training_config = TrainingConfig(
        steps=config.steps,
        batch_size=config.batch_size,
        sequence_length=config.sequence_length,
        learning_rate=config.learning_rate,
        warmup_steps=max(1, config.steps // 20),
        seed=config.seed,
    )
    history = train_language_model(target, corpus, training_config)
    return target, history
