"""Figure 3 — watermark capacity.

The capacity study increases the number of signature bits inserted per
quantization layer (the paper sweeps 50–200 on OPT-2.7B AWQ INT4) and tracks
the watermarked model's perplexity and zero-shot accuracy; every payload in
the sweep remains fully extractable, and the paper identifies 100 bits per
layer as the largest payload that leaves quality untouched.

The simulated layers hold far fewer weights than the real ones, so the
default sweep scales the payload to the layer size while keeping the paper's
geometry (four steps, the second of which is the "recommended capacity").
The paper's absolute sweep can be requested explicitly via ``sweep``.

The sweep executes on the :class:`~repro.robustness.gauntlet.Gauntlet` with
one subject per payload under the identity attack: quality evaluations of
the different payload sizes run in parallel, and all extractions share one
batched ``verify_fleet`` sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.emmark import EmMark
from repro.core.strength import log10_watermark_strength
from repro.experiments.common import prepare_context
from repro.robustness import GauntletSubject, build_attack, run_gauntlet
from repro.utils.tables import Table, format_float

__all__ = ["CapacityPoint", "Figure3Result", "run", "DEFAULT_SWEEP", "PAPER_SWEEP"]

#: Paper sweep (bits per layer) for the real OPT-2.7B.
PAPER_SWEEP: Sequence[int] = (50, 100, 150, 200)
#: Scaled sweep for the simulated models (same 1:2:3:4 geometry).
DEFAULT_SWEEP: Sequence[int] = (12, 24, 36, 48)
DEFAULT_MODEL = "opt-2.7b-sim"


@dataclass
class CapacityPoint:
    """One payload size of the capacity sweep."""

    bits_per_layer: int
    perplexity: float
    zero_shot_accuracy: float
    wer_percent: float
    log10_strength_per_layer: float


@dataclass
class Figure3Result:
    """The capacity sweep."""

    model_name: str
    bits: int
    points: List[CapacityPoint] = field(default_factory=list)

    def to_table(self) -> Table:
        table = Table(
            title=f"Figure 3: watermark capacity on {self.model_name} (INT{self.bits})",
            columns=[
                "Bits / layer",
                "PPL",
                "Zero-shot Acc (%)",
                "WER (%)",
                "log10 strength / layer",
            ],
        )
        for point in self.points:
            table.add_row(
                [
                    point.bits_per_layer,
                    format_float(point.perplexity),
                    format_float(point.zero_shot_accuracy),
                    format_float(point.wer_percent),
                    format_float(point.log10_strength_per_layer, 1),
                ]
            )
        return table

    def render(self) -> str:
        return self.to_table().render()


def run(
    model_name: str = DEFAULT_MODEL,
    bits: int = 4,
    sweep: Sequence[int] = DEFAULT_SWEEP,
    profile: str = "default",
    num_task_examples: Optional[int] = 32,
) -> Figure3Result:
    """Run the capacity sweep."""
    context = prepare_context(
        model_name, bits, profile=profile, num_task_examples=num_task_examples
    )
    # One subject per payload size: insertion (already layer-parallel on the
    # engine) stays sequential, while the gauntlet fans the per-payload
    # quality evaluations out and batches every extraction into one sweep.
    subjects = {}
    for payload in sweep:
        config = context.emmark_config.with_overrides(bits_per_layer=payload)
        emmark = EmMark(config, engine=context.engine)
        watermarked, key, _ = emmark.insert_with_key(
            context.fresh_quantized(), context.activations
        )
        subjects[f"bits-{payload}"] = GauntletSubject(
            model=watermarked, key=key, harness=context.harness
        )
    report = run_gauntlet(subjects, [build_attack("none")], engine=context.engine)
    cell_for = {cell.model_id: cell for cell in report.cells}
    result = Figure3Result(model_name=model_name, bits=bits)
    for payload in sweep:
        cell = cell_for[f"bits-{payload}"]
        result.points.append(
            CapacityPoint(
                bits_per_layer=payload,
                perplexity=cell.perplexity,
                zero_shot_accuracy=cell.zero_shot_accuracy,
                wer_percent=cell.wer_percent,
                log10_strength_per_layer=log10_watermark_strength(payload, 1),
            )
        )
    return result
