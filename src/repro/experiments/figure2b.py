"""Figure 2(b) — re-watermarking attack sweep.

The adversary re-runs EmMark's insertion procedure on the watermarked
OPT-2.7B (AWQ INT4) model with his own hyper-parameters (α=1, β=1.5, seed 22)
and activations measured on the quantized model, inserting 100–300 bits per
layer.  The paper plots the attacked model's perplexity, zero-shot accuracy
and the *owner's* WER against the number of perturbed parameters: quality
drops as the attacker inserts more bits, but the owner's watermark stays
above 95% extractable.

The sweep executes on the :class:`~repro.robustness.gauntlet.Gauntlet`:
every strength's re-watermarking runs in parallel, and the owner's *and*
the attacker's extractions share one batched ``verify_fleet`` sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.experiments.common import prepare_context
from repro.experiments.figure2a import AttackSweepPoint, _build_subject
from repro.robustness import build_attack, run_gauntlet
from repro.utils.tables import Table, format_float

__all__ = ["Figure2bResult", "run", "PAPER_SWEEP"]

PAPER_SWEEP: Sequence[int] = (0, 100, 150, 200, 250, 300)
DEFAULT_MODEL = "opt-2.7b-sim"


@dataclass
class Figure2bResult:
    """The full re-watermarking sweep."""

    model_name: str
    bits: int
    points: List[AttackSweepPoint] = field(default_factory=list)
    attacker_wer: List[float] = field(default_factory=list)
    #: Number of co-resident owners carried by the swept model (1 = paper).
    owners: int = 1

    def to_table(self) -> Table:
        columns = [
            "Attacker bits / layer",
            "PPL",
            "Zero-shot Acc (%)",
            "Owner WER (%)",
            "Attacker WER (%)",
        ]
        if self.owners > 1:
            columns.append("Min co-owner WER (%)")
        table = Table(
            title=(
                f"Figure 2(b): re-watermark attack on {self.model_name} "
                f"(INT{self.bits}"
                + (f", {self.owners} co-resident owners)" if self.owners > 1 else ")")
            ),
            columns=columns,
        )
        for point, attacker in zip(self.points, self.attacker_wer):
            row = [
                point.attack_strength,
                format_float(point.perplexity),
                format_float(point.zero_shot_accuracy),
                format_float(point.wer_percent),
                format_float(attacker),
            ]
            if self.owners > 1:
                row.append(
                    format_float(min(point.co_owner_wer.values()))
                    if point.co_owner_wer
                    else "-"
                )
            table.add_row(row)
        return table

    def render(self) -> str:
        return self.to_table().render()

    def minimum_owner_wer(self) -> float:
        """Lowest owner WER across the sweep (paper claim: > 95%)."""
        return min(point.wer_percent for point in self.points)


def run(
    model_name: str = DEFAULT_MODEL,
    bits: int = 4,
    sweep: Sequence[int] = PAPER_SWEEP,
    profile: str = "default",
    num_task_examples: Optional[int] = 32,
    quant_method: Optional[str] = None,
    owners: int = 1,
) -> Figure2bResult:
    """Run the re-watermarking sweep with the paper's attacker parameters.

    ``quant_method`` overrides the quantization backend (e.g. ``"gptq"``
    measures the sweep under error-compensated rounding); the default is the
    paper's pairing for the model family and precision.  ``owners`` > 1
    sweeps a multi-owner model and reports each co-resident owner's WER per
    point alongside the primary owner's.
    """
    context = prepare_context(
        model_name, bits, profile=profile, num_task_examples=num_task_examples,
        quant_method=quant_method,
    )
    # The shared engine caches every owner key's location plans, so the
    # owners' WER extractions at every sweep strength are cached lookups.
    subject = _build_subject(context, owners)
    report = run_gauntlet(
        {model_name: subject},
        [
            build_attack(
                "rewatermark", calibration_corpus=context.harness.calibration_corpus
            )
        ],
        strengths={"rewatermark": sweep},
        engine=context.engine,
    )
    result = Figure2bResult(model_name=model_name, bits=bits, owners=owners)
    for cell in report.cells:
        result.points.append(
            AttackSweepPoint(
                attack_strength=int(cell.strength),
                perplexity=cell.perplexity,
                zero_shot_accuracy=cell.zero_shot_accuracy,
                wer_percent=cell.wer_percent,
                co_owner_wer=dict(cell.co_owner_wer_percent),
            )
        )
        result.attacker_wer.append(
            0.0 if cell.attacker_wer_percent is None else cell.attacker_wer_percent
        )
    return result
