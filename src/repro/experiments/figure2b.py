"""Figure 2(b) — re-watermarking attack sweep.

The adversary re-runs EmMark's insertion procedure on the watermarked
OPT-2.7B (AWQ INT4) model with his own hyper-parameters (α=1, β=1.5, seed 22)
and activations measured on the quantized model, inserting 100–300 bits per
layer.  The paper plots the attacked model's perplexity, zero-shot accuracy
and the *owner's* WER against the number of perturbed parameters: quality
drops as the attacker inserts more bits, but the owner's watermark stays
above 95% extractable.

The sweep executes on the :class:`~repro.robustness.gauntlet.Gauntlet`:
every strength's re-watermarking runs in parallel, and the owner's *and*
the attacker's extractions share one batched ``verify_fleet`` sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.emmark import EmMark
from repro.experiments.common import prepare_context
from repro.experiments.figure2a import AttackSweepPoint
from repro.robustness import GauntletSubject, build_attack, run_gauntlet
from repro.utils.tables import Table, format_float

__all__ = ["Figure2bResult", "run", "PAPER_SWEEP"]

PAPER_SWEEP: Sequence[int] = (0, 100, 150, 200, 250, 300)
DEFAULT_MODEL = "opt-2.7b-sim"


@dataclass
class Figure2bResult:
    """The full re-watermarking sweep."""

    model_name: str
    bits: int
    points: List[AttackSweepPoint] = field(default_factory=list)
    attacker_wer: List[float] = field(default_factory=list)

    def to_table(self) -> Table:
        table = Table(
            title=f"Figure 2(b): re-watermark attack on {self.model_name} (INT{self.bits})",
            columns=[
                "Attacker bits / layer",
                "PPL",
                "Zero-shot Acc (%)",
                "Owner WER (%)",
                "Attacker WER (%)",
            ],
        )
        for point, attacker in zip(self.points, self.attacker_wer):
            table.add_row(
                [
                    point.attack_strength,
                    format_float(point.perplexity),
                    format_float(point.zero_shot_accuracy),
                    format_float(point.wer_percent),
                    format_float(attacker),
                ]
            )
        return table

    def render(self) -> str:
        return self.to_table().render()

    def minimum_owner_wer(self) -> float:
        """Lowest owner WER across the sweep (paper claim: > 95%)."""
        return min(point.wer_percent for point in self.points)


def run(
    model_name: str = DEFAULT_MODEL,
    bits: int = 4,
    sweep: Sequence[int] = PAPER_SWEEP,
    profile: str = "default",
    num_task_examples: Optional[int] = 32,
    quant_method: Optional[str] = None,
) -> Figure2bResult:
    """Run the re-watermarking sweep with the paper's attacker parameters.

    ``quant_method`` overrides the quantization backend (e.g. ``"gptq"``
    measures the sweep under error-compensated rounding); the default is the
    paper's pairing for the model family and precision.
    """
    context = prepare_context(
        model_name, bits, profile=profile, num_task_examples=num_task_examples,
        quant_method=quant_method,
    )
    # The shared engine caches the owner key's location plans, so the owner's
    # WER extraction at every sweep strength is a pure (cached) lookup.
    emmark = EmMark(context.emmark_config, engine=context.engine)
    watermarked, key, _ = emmark.insert_with_key(context.fresh_quantized(), context.activations)
    report = run_gauntlet(
        {model_name: GauntletSubject(model=watermarked, key=key, harness=context.harness)},
        [
            build_attack(
                "rewatermark", calibration_corpus=context.harness.calibration_corpus
            )
        ],
        strengths={"rewatermark": sweep},
        engine=context.engine,
    )
    result = Figure2bResult(model_name=model_name, bits=bits)
    for cell in report.cells:
        result.points.append(
            AttackSweepPoint(
                attack_strength=int(cell.strength),
                perplexity=cell.perplexity,
                zero_shot_accuracy=cell.zero_shot_accuracy,
                wer_percent=cell.wer_percent,
            )
        )
        result.attacker_wer.append(
            0.0 if cell.attacker_wer_percent is None else cell.attacker_wer_percent
        )
    return result
