"""Experiment harness: one module per table / figure of the paper.

Every module exposes a ``run(...)`` function returning a structured result
object with a ``to_table()`` (or ``to_tables()``) method that prints the same
rows / series the paper reports:

* :mod:`repro.experiments.table1` — fidelity (PPL, zero-shot accuracy, WER)
  across the OPT / LLaMA-2 sim families, INT8 and INT4.
* :mod:`repro.experiments.table2` — insertion time and GPU memory.
* :mod:`repro.experiments.figure2a` — parameter-overwriting attack sweep.
* :mod:`repro.experiments.figure2b` — re-watermarking attack sweep.
* :mod:`repro.experiments.table3` — (α, β) coefficient ablation.
* :mod:`repro.experiments.figure3` — watermark-capacity sweep.
* :mod:`repro.experiments.table4` — integrity on non-watermarked models.
* :mod:`repro.experiments.forging` — forging-attack analysis (Section 5.3).
* :mod:`repro.experiments.ablations` — extra ablations called out in
  DESIGN.md (candidate-pool ratio, saliency source).
"""

from repro.experiments.common import ExperimentContext, prepare_context

__all__ = ["ExperimentContext", "prepare_context"]
