"""Additional ablations called out in DESIGN.md.

Two design choices of EmMark beyond the (α, β) coefficients deserve their own
sweeps:

* **Candidate-pool ratio** (``|B_c|·n / |B|``): a larger pool gives the seeded
  sub-sampling more secrecy (harder for an adversary to guess the final
  locations) but admits lower-ranked positions; the paper fixes 50/60 without
  exploring the trade-off.  :func:`run_pool_ratio_ablation` sweeps it.
* **Saliency source**: EmMark scores saliency with the *full-precision*
  model's activations; an adversary (or a careless implementation) only has
  the quantized model.  :func:`run_saliency_source_ablation` measures how
  much the selected locations differ between the two sources — the overlap
  gap is exactly what makes the re-watermark attack miss the owner's
  positions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.core.emmark import EmMark
from repro.core.extraction import reproduce_locations
from repro.experiments.common import prepare_context
from repro.models.activations import collect_activation_stats
from repro.utils.tables import Table, format_float

__all__ = [
    "PoolRatioPoint",
    "PoolRatioResult",
    "run_pool_ratio_ablation",
    "SaliencySourceResult",
    "run_saliency_source_ablation",
]

DEFAULT_MODEL = "opt-2.7b-sim"


# ----------------------------------------------------------------------
# Candidate-pool ratio
# ----------------------------------------------------------------------
@dataclass
class PoolRatioPoint:
    """One pool-ratio setting."""

    ratio: float
    perplexity: float
    zero_shot_accuracy: float
    wer_percent: float
    mean_pool_size: float


@dataclass
class PoolRatioResult:
    """The pool-ratio sweep."""

    model_name: str
    bits: int
    points: List[PoolRatioPoint] = field(default_factory=list)

    def to_table(self) -> Table:
        table = Table(
            title=f"Ablation: candidate-pool ratio on {self.model_name} (INT{self.bits})",
            columns=["|Bc|·n/|B|", "PPL", "Zero-shot Acc (%)", "WER (%)", "mean |Bc|"],
        )
        for point in self.points:
            table.add_row(
                [
                    f"{point.ratio:g}",
                    format_float(point.perplexity),
                    format_float(point.zero_shot_accuracy),
                    format_float(point.wer_percent),
                    format_float(point.mean_pool_size, 0),
                ]
            )
        return table

    def render(self) -> str:
        return self.to_table().render()


def run_pool_ratio_ablation(
    model_name: str = DEFAULT_MODEL,
    bits: int = 4,
    ratios: Sequence[float] = (2.0, 5.0, 10.0, 25.0, 50.0),
    profile: str = "default",
    num_task_examples: int = 32,
) -> PoolRatioResult:
    """Sweep the candidate-pool ratio at fixed payload."""
    context = prepare_context(
        model_name, bits, profile=profile, num_task_examples=num_task_examples
    )
    result = PoolRatioResult(model_name=model_name, bits=bits)
    for ratio in ratios:
        config = context.emmark_config.with_overrides(candidate_pool_ratio=ratio)
        emmark = EmMark(config, engine=context.engine)
        watermarked, key, report = emmark.insert_with_key(
            context.fresh_quantized(), context.activations
        )
        quality = context.harness.evaluate(watermarked)
        extraction = emmark.extract_with_key(watermarked, key)
        result.points.append(
            PoolRatioPoint(
                ratio=ratio,
                perplexity=quality.perplexity,
                zero_shot_accuracy=quality.zero_shot_accuracy,
                wer_percent=extraction.wer_percent,
                mean_pool_size=float(np.mean(list(report.candidate_pool_sizes.values()))),
            )
        )
    return result


# ----------------------------------------------------------------------
# Saliency source
# ----------------------------------------------------------------------
@dataclass
class SaliencySourceResult:
    """Overlap between full-precision-scored and quantized-scored locations."""

    model_name: str
    bits: int
    per_layer_overlap: Dict[str, float] = field(default_factory=dict)

    @property
    def mean_overlap(self) -> float:
        """Mean fraction of owner locations an adversary would also select."""
        if not self.per_layer_overlap:
            return 0.0
        return float(np.mean(list(self.per_layer_overlap.values())))

    def to_table(self) -> Table:
        table = Table(
            title=(
                f"Ablation: saliency source on {self.model_name} (INT{self.bits}) — "
                "location overlap when scoring with quantized-model activations"
            ),
            columns=["Layer", "Overlap fraction"],
        )
        for name, overlap in self.per_layer_overlap.items():
            table.add_row([name, format_float(overlap, 3)])
        table.add_row(["mean", format_float(self.mean_overlap, 3)])
        return table

    def render(self) -> str:
        return self.to_table().render()


def run_saliency_source_ablation(
    model_name: str = DEFAULT_MODEL,
    bits: int = 4,
    profile: str = "default",
) -> SaliencySourceResult:
    """Compare owner locations against quantized-activation-scored locations."""
    context = prepare_context(model_name, bits, profile=profile)
    emmark = EmMark(context.emmark_config, engine=context.engine)
    _, owner_key, _ = emmark.insert_with_key(context.fresh_quantized(), context.activations)
    # Insertion just warmed the plan cache, so this reproduction is pure lookups.
    owner_locations = reproduce_locations(owner_key, engine=context.engine)

    # Re-score with activations measured on the *quantized* model, which is
    # all an adversary has.
    quantized_activations = collect_activation_stats(
        context.quantized.materialize(), context.harness.calibration_corpus
    )
    adversary_key = owner_key
    adversary_key = type(owner_key)(
        signature=owner_key.signature,
        config=owner_key.config,
        reference_weights=owner_key.reference_weights,
        activations=quantized_activations,
        layer_names=owner_key.layer_names,
        method=owner_key.method,
        bits=owner_key.bits,
        model_name=owner_key.model_name,
        outlier_columns=owner_key.outlier_columns,
    )
    adversary_locations = reproduce_locations(adversary_key, engine=context.engine)

    result = SaliencySourceResult(model_name=model_name, bits=bits)
    for name in owner_key.layer_names:
        owner_set = set(np.asarray(owner_locations[name]).tolist())
        adversary_set = set(np.asarray(adversary_locations[name]).tolist())
        if not owner_set:
            result.per_layer_overlap[name] = 0.0
            continue
        result.per_layer_overlap[name] = len(owner_set & adversary_set) / len(owner_set)
    return result
