"""Table 3 — effectiveness of the insertion coefficients (α, β).

The ablation inserts a fixed payload into OPT-2.7B (AWQ INT4) with three
coefficient settings — (1, 0) pure quality score, (0.5, 0.5) the default,
(0, 1) pure saliency score — and reports perplexity, zero-shot accuracy and
WER for each.  The paper finds all three extract fully, with a slight quality
cost when only the saliency score is used (β dominates), because candidates
are then drawn from salient channels regardless of their magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.emmark import EmMark
from repro.experiments.common import prepare_context
from repro.utils.tables import Table, format_float

__all__ = ["Table3Row", "Table3Result", "run", "PAPER_COEFFICIENTS"]

PAPER_COEFFICIENTS: Sequence[Tuple[float, float]] = ((1.0, 0.0), (0.5, 0.5), (0.0, 1.0))
DEFAULT_MODEL = "opt-2.7b-sim"


@dataclass
class Table3Row:
    """Measurement for one (α, β) pair."""

    alpha: float
    beta: float
    perplexity: float
    zero_shot_accuracy: float
    wer_percent: float


@dataclass
class Table3Result:
    """All coefficient ablation rows."""

    model_name: str
    bits: int
    bits_per_layer: int
    rows: List[Table3Row] = field(default_factory=list)

    def to_table(self) -> Table:
        table = Table(
            title=(
                f"Table 3: insertion coefficients on {self.model_name} "
                f"(INT{self.bits}, {self.bits_per_layer} bits/layer)"
            ),
            columns=["(alpha, beta)", "PPL", "Zero-shot Acc (%)", "WER (%)"],
        )
        for row in self.rows:
            table.add_row(
                [
                    f"({row.alpha:g}, {row.beta:g})",
                    format_float(row.perplexity),
                    format_float(row.zero_shot_accuracy),
                    format_float(row.wer_percent),
                ]
            )
        return table

    def render(self) -> str:
        return self.to_table().render()


def run(
    model_name: str = DEFAULT_MODEL,
    bits: int = 4,
    coefficients: Sequence[Tuple[float, float]] = PAPER_COEFFICIENTS,
    bits_per_layer: Optional[int] = None,
    profile: str = "default",
    num_task_examples: Optional[int] = 32,
) -> Table3Result:
    """Run the coefficient ablation.

    The paper uses a maximum signature length of 100 bits per layer for this
    study; the sim default scales that down alongside the other payloads
    (use ``bits_per_layer`` to override).
    """
    context = prepare_context(
        model_name, bits, profile=profile, num_task_examples=num_task_examples
    )
    payload = bits_per_layer or context.emmark_config.bits_per_layer
    result = Table3Result(model_name=model_name, bits=bits, bits_per_layer=payload)
    for alpha, beta in coefficients:
        config = context.emmark_config.with_overrides(
            alpha=alpha, beta=beta, bits_per_layer=payload
        )
        emmark = EmMark(config)
        watermarked, key, _ = emmark.insert_with_key(
            context.fresh_quantized(), context.activations
        )
        quality = context.harness.evaluate(watermarked)
        extraction = emmark.extract_with_key(watermarked, key)
        result.rows.append(
            Table3Row(
                alpha=alpha,
                beta=beta,
                perplexity=quality.perplexity,
                zero_shot_accuracy=quality.zero_shot_accuracy,
                wer_percent=extraction.wer_percent,
            )
        )
    return result
