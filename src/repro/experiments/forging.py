"""Forging-attack analysis (Section 5.3, "Forging Attacks").

The forging discussion in the paper is qualitative, but every quantity it
relies on can be measured:

* a forged claim built from counterfeit locations is rejected because the
  locations cannot be reproduced from key material;
* after a counterfeit re-watermarking, the owner's key still extracts from
  the attacked model while the attacker's key does not extract from the
  owner's original model (temporal precedence);
* matching the owner's signature by coincidence has probability
  ``9.09e-13`` per 40-bit layer and ``9.09e-13^n`` for an ``n``-layer model.

:func:`run` performs all three measurements on the simulated OPT-2.7B.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.attacks.forging import ForgingOutcome, counterfeit_key_attack, forge_with_fake_locations
from repro.attacks.rewatermark import RewatermarkAttackConfig, rewatermark_attack
from repro.core.emmark import EmMark
from repro.core.strength import false_claim_probability, log10_watermark_strength
from repro.experiments.common import prepare_context
from repro.utils.tables import Table, format_float

__all__ = ["ForgingResult", "run"]

DEFAULT_MODEL = "opt-2.7b-sim"


@dataclass
class ForgingResult:
    """Outcomes of the two forging settings plus the collision probability."""

    model_name: str
    bits: int
    fake_location_outcome: ForgingOutcome
    owner_on_attacked: ForgingOutcome
    attacker_on_original: ForgingOutcome
    per_layer_collision_probability: float
    log10_model_collision_probability: float
    num_layers: int

    def to_table(self) -> Table:
        table = Table(
            title=f"Forging attacks on {self.model_name} (INT{self.bits})",
            columns=["Scenario", "Claimed WER (%)", "Reproducible", "Accepted"],
        )
        table.add_row(
            [
                "Counterfeit locations",
                format_float(self.fake_location_outcome.claimed_wer),
                self.fake_location_outcome.reproducible,
                self.fake_location_outcome.accepted,
            ]
        )
        table.add_row(
            [
                "Owner key on re-watermarked model",
                format_float(self.owner_on_attacked.claimed_wer),
                self.owner_on_attacked.reproducible,
                self.owner_on_attacked.accepted,
            ]
        )
        table.add_row(
            [
                "Attacker key on original model",
                format_float(self.attacker_on_original.claimed_wer),
                self.attacker_on_original.reproducible,
                self.attacker_on_original.accepted,
            ]
        )
        return table

    def render(self) -> str:
        lines = [self.to_table().render()]
        lines.append(
            "Per-layer signature collision probability: "
            f"{self.per_layer_collision_probability:.3e}; whole-model (n={self.num_layers}): "
            f"1e{self.log10_model_collision_probability:.1f}"
        )
        return "\n".join(lines)


def run(
    model_name: str = DEFAULT_MODEL,
    bits: int = 4,
    profile: str = "default",
    attacker_bits_per_layer: Optional[int] = None,
) -> ForgingResult:
    """Run both forging scenarios and compute the collision probabilities."""
    context = prepare_context(model_name, bits, profile=profile)
    emmark = EmMark(context.emmark_config)
    original = context.fresh_quantized()
    watermarked, owner_key, _ = emmark.insert_with_key(original.clone(), context.activations)

    # Setting 1: counterfeit locations on the deployed model.
    fake_outcome = forge_with_fake_locations(
        watermarked, bits_per_layer=context.emmark_config.bits_per_layer
    )

    # Setting 2: the adversary re-watermarks and the dispute goes to a judge.
    attacked, attacker_key = rewatermark_attack(
        watermarked,
        RewatermarkAttackConfig(
            bits_per_layer=attacker_bits_per_layer or context.emmark_config.bits_per_layer
        ),
        calibration_corpus=context.harness.calibration_corpus,
    )
    outcomes = counterfeit_key_attack(original, attacked, owner_key, attacker_key)

    bits_per_layer = context.emmark_config.bits_per_layer
    return ForgingResult(
        model_name=model_name,
        bits=bits,
        fake_location_outcome=fake_outcome,
        owner_on_attacked=outcomes["owner_on_attacked"],
        attacker_on_original=outcomes["attacker_on_original"],
        per_layer_collision_probability=false_claim_probability(bits_per_layer, bits_per_layer),
        log10_model_collision_probability=log10_watermark_strength(
            bits_per_layer, watermarked.num_quantization_layers
        ),
        num_layers=watermarked.num_quantization_layers,
    )
