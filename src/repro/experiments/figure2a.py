"""Figure 2(a) — parameter overwriting attack sweep.

The paper overwrites 100–500 randomly chosen weights per quantized layer of
the watermarked OPT-2.7B (AWQ INT4) model and plots, against the number of
overwritten parameters, the perplexity, the zero-shot accuracy and the WER.
The finding: model quality collapses well before the watermark — WER stays
above 99% across the sweep.

The reproduction runs the same sweep on the simulated OPT-2.7B.  The x-axis
values are configurable; the defaults follow the paper (0, 100, …, 500).
The sweep executes on the :class:`~repro.robustness.gauntlet.Gauntlet`:
attack strengths run in parallel and every point's ownership check shares
one batched ``verify_fleet`` sweep (the owner key's location plans are
reproduced once for the whole figure).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.emmark import EmMark
from repro.experiments.common import insert_multi_owner, prepare_context
from repro.robustness import GauntletSubject, build_attack, run_gauntlet
from repro.utils.tables import Table, format_float

__all__ = ["AttackSweepPoint", "Figure2aResult", "run", "PAPER_SWEEP"]

PAPER_SWEEP: Sequence[int] = (0, 100, 200, 300, 400, 500)
DEFAULT_MODEL = "opt-2.7b-sim"


@dataclass
class AttackSweepPoint:
    """One point of an attack-strength sweep.

    ``co_owner_wer`` carries the co-resident owners' extraction rates for
    multi-owner sweeps (empty in the single-owner figures).
    """

    attack_strength: int
    perplexity: float
    zero_shot_accuracy: float
    wer_percent: float
    co_owner_wer: Dict[str, float] = field(default_factory=dict)


@dataclass
class Figure2aResult:
    """The full overwriting-attack sweep."""

    model_name: str
    bits: int
    points: List[AttackSweepPoint] = field(default_factory=list)
    #: Number of co-resident owners carried by the swept model (1 = paper).
    owners: int = 1

    def to_table(self) -> Table:
        columns = ["Overwritten / layer", "PPL", "Zero-shot Acc (%)", "WER (%)"]
        if self.owners > 1:
            columns.append("Min co-owner WER (%)")
        table = Table(
            title=(
                f"Figure 2(a): parameter overwriting attack on {self.model_name} "
                f"(INT{self.bits}"
                + (f", {self.owners} co-resident owners)" if self.owners > 1 else ")")
            ),
            columns=columns,
        )
        for point in self.points:
            row = [
                point.attack_strength,
                format_float(point.perplexity),
                format_float(point.zero_shot_accuracy),
                format_float(point.wer_percent),
            ]
            if self.owners > 1:
                row.append(
                    format_float(min(point.co_owner_wer.values()))
                    if point.co_owner_wer
                    else "-"
                )
            table.add_row(row)
        return table

    def render(self) -> str:
        return self.to_table().render()

    def minimum_wer(self) -> float:
        """Lowest primary-owner WER across the sweep (paper claim: > 99%)."""
        return min(point.wer_percent for point in self.points)

    def minimum_wer_all_owners(self) -> float:
        """Lowest WER across the sweep over *every* co-resident owner."""
        return min(
            min([point.wer_percent, *point.co_owner_wer.values()])
            for point in self.points
        )


def run(
    model_name: str = DEFAULT_MODEL,
    bits: int = 4,
    sweep: Sequence[int] = PAPER_SWEEP,
    style: str = "resample",
    profile: str = "default",
    num_task_examples: Optional[int] = 32,
    attack_seed: int = 0,
    quant_method: Optional[str] = None,
    owners: int = 1,
) -> Figure2aResult:
    """Run the overwriting-attack sweep.

    Parameters
    ----------
    model_name, bits:
        Target model (the paper uses OPT-2.7B quantized to INT4 by AWQ).
    sweep:
        Numbers of overwritten weights per layer.
    style:
        ``"resample"`` (replace with random grid values, the threat-model
        definition) or ``"increment"`` (±1 additions).
    profile, num_task_examples:
        Evaluation controls.
    attack_seed:
        Attacker randomness (the gauntlet's root seed).
    quant_method:
        Quantization backend override (e.g. ``"gptq"``); defaults to the
        paper's pairing for the model family and precision.
    owners:
        Co-resident owners inserted into the swept model (1 reproduces the
        paper).  With more, each point additionally reports every
        co-resident owner's WER — the multi-owner variant of the figure.
    """
    context = prepare_context(
        model_name, bits, profile=profile, num_task_examples=num_task_examples,
        quant_method=quant_method,
    )
    subject = _build_subject(context, owners)
    report = run_gauntlet(
        {model_name: subject},
        [build_attack("overwrite", style=style)],
        strengths={"overwrite": sweep},
        engine=context.engine,
        seed=attack_seed,
    )
    result = Figure2aResult(model_name=model_name, bits=bits, owners=owners)
    for cell in report.cells:
        result.points.append(
            AttackSweepPoint(
                attack_strength=int(cell.strength),
                perplexity=cell.perplexity,
                zero_shot_accuracy=cell.zero_shot_accuracy,
                wer_percent=cell.wer_percent,
                co_owner_wer=dict(cell.co_owner_wer_percent),
            )
        )
    return result


def _build_subject(context, owners: int) -> GauntletSubject:
    """The swept subject: single-owner (paper) or multi-owner (variant)."""
    if owners <= 1:
        # Sharing the context engine means every sweep point's extraction
        # reuses the key's cached location plans — scoring runs once.
        emmark = EmMark(context.emmark_config, engine=context.engine)
        watermarked, key, _ = emmark.insert_with_key(
            context.fresh_quantized(), context.activations
        )
        return GauntletSubject(model=watermarked, key=key, harness=context.harness)
    multi = insert_multi_owner(context, owners)
    keys = multi.keys()
    primary = next(iter(keys))
    return GauntletSubject(
        model=multi.model,
        key=keys[primary],
        harness=context.harness,
        co_keys={owner_id: key for owner_id, key in keys.items() if owner_id != primary},
    )
