"""Table 1 — fidelity of watermarked embedded LLMs.

For every (model, precision) pair the paper reports perplexity, zero-shot
accuracy and WER for four variants: the non-watermarked quantized model,
SpecMark, RandomWM and EmMark.  This module reproduces those rows on the
simulated model zoo, including the ``Δ̄`` column (average degradation relative
to the non-watermarked model).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.baselines import RandomWM, SpecMark
from repro.core.emmark import EmMark
from repro.experiments.common import ExperimentContext, prepare_context
from repro.models.registry import LLAMA2_FAMILY, OPT_FAMILY
from repro.utils.tables import Table, format_float

__all__ = ["Table1Row", "Table1Result", "run", "DEFAULT_MODEL_SUBSET"]

#: Models used when the caller does not ask for the full zoo.  The subset
#: covers both families, both pool-ratio regimes (below / above 6.7B) and the
#: model every other experiment uses (OPT-2.7B).
DEFAULT_MODEL_SUBSET: Sequence[str] = (
    "opt-125m-sim",
    "opt-2.7b-sim",
    "opt-13b-sim",
    "llama2-7b-sim",
)

#: All models of Table 1, in the paper's column order.
FULL_MODEL_LIST: Sequence[str] = tuple(OPT_FAMILY + LLAMA2_FAMILY)

METHODS = ("w/o WM", "SpecMark", "RandomWM", "EmMark")


@dataclass
class Table1Row:
    """One (model, precision, method) measurement."""

    model_name: str
    bits: int
    method: str
    perplexity: float
    zero_shot_accuracy: float
    wer_percent: float


@dataclass
class Table1Result:
    """All rows of the fidelity experiment plus the paper-style summary."""

    rows: List[Table1Row] = field(default_factory=list)

    def rows_for(self, bits: int, method: str) -> List[Table1Row]:
        """Rows of one precision and one method, in model order."""
        return [row for row in self.rows if row.bits == bits and row.method == method]

    def average_degradation(self, bits: int, method: str, metric: str) -> float:
        """The paper's ``Δ̄``: mean degradation versus the w/o WM rows."""
        baseline = {row.model_name: row for row in self.rows_for(bits, "w/o WM")}
        deltas = []
        for row in self.rows_for(bits, method):
            base = baseline.get(row.model_name)
            if base is None:
                continue
            if metric == "perplexity":
                deltas.append(row.perplexity - base.perplexity)
            elif metric == "zero_shot":
                deltas.append(row.zero_shot_accuracy - base.zero_shot_accuracy)
            else:
                raise ValueError("metric must be 'perplexity' or 'zero_shot'")
        return float(np.mean(deltas)) if deltas else 0.0

    def to_tables(self) -> List[Table]:
        """Render one table per precision, mirroring Table 1's two halves."""
        tables = []
        for bits in (8, 4):
            model_names = sorted({row.model_name for row in self.rows if row.bits == bits})
            if not model_names:
                continue
            columns = ["Metric", "Method"] + model_names + ["avg Δ"]
            table = Table(title=f"Table 1 (INT{bits} quantization)", columns=columns)
            for metric, attr, fmt in (
                ("PPL ↓", "perplexity", format_float),
                ("Zero-shot Acc (%) ↑", "zero_shot_accuracy", format_float),
                ("WER (%) ↑", "wer_percent", format_float),
            ):
                for method in METHODS:
                    if metric == "WER (%) ↑" and method == "w/o WM":
                        continue
                    per_model = {row.model_name: row for row in self.rows_for(bits, method)}
                    cells = [fmt(getattr(per_model[m], attr)) if m in per_model else "-" for m in model_names]
                    if metric.startswith("PPL"):
                        delta = self.average_degradation(bits, method, "perplexity")
                        delta_cell = f"{delta:+.2f}" if method != "w/o WM" else "0"
                    elif metric.startswith("Zero-shot"):
                        delta = self.average_degradation(bits, method, "zero_shot")
                        delta_cell = f"{delta:+.2f}" if method != "w/o WM" else "0"
                    else:
                        delta_cell = "-"
                    table.add_row([metric, method] + cells + [delta_cell])
            tables.append(table)
        return tables

    def render(self) -> str:
        """All precision tables as one printable string."""
        return "\n\n".join(table.render() for table in self.to_tables())


def _evaluate_method(context: ExperimentContext, method: str) -> Table1Row:
    """Watermark the context's quantized model with ``method`` and measure it."""
    quantized = context.fresh_quantized()
    if method == "w/o WM":
        quality = context.baseline_quality
        return Table1Row(
            model_name=context.model_name,
            bits=context.bits,
            method=method,
            perplexity=quality.perplexity,
            zero_shot_accuracy=quality.zero_shot_accuracy,
            wer_percent=float("nan"),
        )
    bits_per_layer = context.emmark_config.bits_per_layer
    if method == "EmMark":
        scheme = EmMark(context.emmark_config)
        watermarked, record, extraction = scheme.watermark_and_verify(
            quantized, activations=context.activations
        )
    elif method == "RandomWM":
        scheme = RandomWM(bits_per_layer=bits_per_layer, seed=context.emmark_config.seed)
        watermarked, record, extraction = scheme.watermark_and_verify(quantized)
    elif method == "SpecMark":
        scheme = SpecMark(bits_per_layer=bits_per_layer, seed=context.emmark_config.seed)
        watermarked, record, extraction = scheme.watermark_and_verify(quantized)
    else:
        raise ValueError(f"unknown method {method!r}")
    quality = context.harness.evaluate(watermarked)
    return Table1Row(
        model_name=context.model_name,
        bits=context.bits,
        method=method,
        perplexity=quality.perplexity,
        zero_shot_accuracy=quality.zero_shot_accuracy,
        wer_percent=extraction.wer_percent,
    )


def run(
    model_names: Optional[Sequence[str]] = None,
    precisions: Sequence[int] = (8, 4),
    profile: str = "default",
    num_task_examples: Optional[int] = 32,
) -> Table1Result:
    """Run the fidelity experiment.

    Parameters
    ----------
    model_names:
        Which sim models to include; defaults to :data:`DEFAULT_MODEL_SUBSET`
        (use :data:`FULL_MODEL_LIST` for the complete Table 1).
    precisions:
        Precisions to evaluate (8 and/or 4).
    profile:
        Training profile of the underlying sims.
    num_task_examples:
        Zero-shot examples per task.
    """
    model_names = list(model_names or DEFAULT_MODEL_SUBSET)
    result = Table1Result()
    for bits in precisions:
        for model_name in model_names:
            context = prepare_context(
                model_name, bits, profile=profile, num_task_examples=num_task_examples
            )
            for method in METHODS:
                result.rows.append(_evaluate_method(context, method))
    return result
