"""Shared plumbing of the experiment modules.

Every experiment needs the same preparation: a pre-trained sim model, its
calibration activation statistics, a quantized instance produced by the
framework the paper pairs with that family/precision, and an evaluation
harness.  :func:`prepare_context` builds all of it (with caching across
experiments in the same process) and returns an :class:`ExperimentContext`.

Every context also carries the process-wide
:class:`~repro.engine.WatermarkEngine`, so all experiments — and in
particular the attack sweeps, which re-extract the same key many times —
share one location-plan cache and one parallel layer executor.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional

from repro.core.config import EmMarkConfig
from repro.engine import WatermarkEngine, get_default_engine
from repro.eval.harness import EvaluationHarness, QualityReport
from repro.models.activations import ActivationStats, collect_activation_stats
from repro.models.registry import get_model_config, get_pretrained_model_and_data
from repro.models.transformer import TransformerLM
from repro.quant.api import paper_quantizer_for, quantize_model
from repro.quant.base import QuantizedModel
from repro.utils.logging import get_logger

logger = get_logger("experiments")

__all__ = [
    "ExperimentContext",
    "prepare_context",
    "default_sim_bits_per_layer",
    "derive_owner_configs",
    "insert_multi_owner",
]

#: Per-layer signature payload used by the experiments for the simulated
#: models.  The paper inserts 300 bits into INT8 layers and 40 into INT4
#: layers of multi-million-weight matrices; the sim layers hold a few
#: thousand weights, so the payloads are scaled down while preserving the
#: INT8 > INT4 ordering.
SIM_BITS_PER_LAYER = {8: 24, 4: 12}


def default_sim_bits_per_layer(bits: int) -> int:
    """Per-layer payload used for a given precision in the sim experiments."""
    try:
        return SIM_BITS_PER_LAYER[bits]
    except KeyError as exc:
        raise ValueError("only INT8 and INT4 are configured") from exc


@dataclass
class ExperimentContext:
    """Everything an experiment needs for one (model, precision) pair.

    Attributes
    ----------
    model_name:
        Registry name of the simulated model.
    bits:
        Quantization precision (8 or 4).
    quant_method:
        The framework used (smoothquant / llm_int8 / awq), following the
        paper's pairing.
    full_precision:
        The pre-trained full-precision model.
    activations:
        Calibration activation statistics of the full-precision model.
    quantized:
        The quantized (not yet watermarked) model.
    harness:
        Shared evaluation harness.
    baseline_quality:
        Quality report of the non-watermarked quantized model (the "w/o WM"
        rows of Table 1).
    emmark_config:
        The scaled EmMark configuration used by default for this context.
    engine:
        The shared :class:`~repro.engine.WatermarkEngine` (process-wide
        default): experiments built from the same context reuse cached
        location plans across insertion, extraction and attack sweeps.
    """

    model_name: str
    bits: int
    quant_method: str
    full_precision: TransformerLM
    activations: ActivationStats
    quantized: QuantizedModel
    harness: EvaluationHarness
    baseline_quality: QualityReport
    emmark_config: EmMarkConfig
    engine: Optional[WatermarkEngine] = None

    def fresh_quantized(self) -> QuantizedModel:
        """A clone of the original quantized model safe to mutate."""
        return self.quantized.clone()


@lru_cache(maxsize=64)
def _cached_context(
    model_name: str,
    bits: int,
    profile: str,
    num_task_examples: Optional[int],
    quant_method: Optional[str],
) -> ExperimentContext:
    config = get_model_config(model_name)
    logger.info(
        "preparing experiment substrate: %s (INT%d, profile=%s)",
        model_name, bits, profile,
    )
    model, dataset = get_pretrained_model_and_data(model_name, profile=profile)
    activations = collect_activation_stats(model, dataset.calibration)
    method = quant_method or paper_quantizer_for(config.family, bits).method_name
    quantized = quantize_model(model, method, bits=bits, activations=activations)
    harness = EvaluationHarness(dataset, num_task_examples=num_task_examples)
    baseline_quality = harness.evaluate(quantized)
    logger.info(
        "substrate ready: %s via %s, baseline perplexity %.3f",
        model_name, method, baseline_quality.perplexity,
    )
    emmark_config = EmMarkConfig.scaled_for_model(
        quantized, bits_per_layer=default_sim_bits_per_layer(bits)
    )
    return ExperimentContext(
        model_name=model_name,
        bits=bits,
        quant_method=method,
        full_precision=model,
        activations=activations,
        quantized=quantized,
        harness=harness,
        baseline_quality=baseline_quality,
        emmark_config=emmark_config,
        engine=get_default_engine(),
    )


def prepare_context(
    model_name: str,
    bits: int,
    profile: str = "default",
    num_task_examples: Optional[int] = 32,
    quant_method: Optional[str] = None,
) -> ExperimentContext:
    """Build (or fetch from cache) the experiment context for one model.

    Parameters
    ----------
    model_name:
        Registry name, e.g. ``"opt-2.7b-sim"``.
    bits:
        Quantization precision, 8 or 4.
    profile:
        Training profile of the underlying sim model (``"default"`` or
        ``"smoke"``).
    num_task_examples:
        Cap on zero-shot examples per task (speeds up sweeps).
    quant_method:
        Override of the quantization framework; defaults to the paper's
        pairing for the model family and precision.
    """
    if bits not in (8, 4):
        raise ValueError("the paper evaluates INT8 and INT4 only")
    return _cached_context(model_name, bits, profile, num_task_examples, quant_method)


def derive_owner_configs(base: EmMarkConfig, owners: int) -> "dict[str, EmMarkConfig]":
    """Deterministic per-owner configurations for a multi-owner insertion.

    Thin re-export of :func:`repro.engine.engine.derive_owner_configs` — one
    source of the owner-naming/seed-offset scheme, so the engine's
    ``insert_multi(model, N)`` path and the experiment/CLI variants can
    never diverge.
    """
    from repro.engine.engine import derive_owner_configs as engine_derive

    return engine_derive(base, owners)


def insert_multi_owner(context: ExperimentContext, owners: int):
    """Insert ``owners`` co-resident signatures into one fresh quantized clone.

    Returns the engine's
    :class:`~repro.engine.reports.MultiOwnerInsertionResult`: one model
    carrying every owner's watermark on disjoint slot pools, each key
    extracting independently at 100% WER.
    """
    engine = context.engine if context.engine is not None else get_default_engine()
    return engine.insert_multi(
        context.fresh_quantized(),
        context.activations,
        derive_owner_configs(context.emmark_config, owners),
        in_place=True,
    )
