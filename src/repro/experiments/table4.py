"""Table 4 — watermark integrity.

Integrity means the scheme only claims ownership of models that actually
carry the owner's watermark.  The paper extracts the owner's signature from
five models:

* **WM** — the watermarked OPT-2.7B (AWQ INT4): 100% WER expected.
* **non-WM 1** — the same model, quantized by AWQ, never watermarked.
* **non-WM 2** — the base model fine-tuned on a 4k Alpaca subset, then AWQ.
* **non-WM 3** — the base model fine-tuned on WikiText, then AWQ.
* **non-WM 4** — the base model quantized by GPTQ instead of AWQ.

All four non-watermarked models should yield (near-)zero WER.  The
reproduction builds the same five models on the simulated substrate, using
Alpaca-sim and a fresh slice of WikiText-sim for the fine-tuned variants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.emmark import EmMark
from repro.data.alpaca import load_alpaca_sim
from repro.experiments.common import prepare_context
from repro.finetune.full import FineTuneConfig, fine_tune_full_precision
from repro.models.activations import collect_activation_stats
from repro.quant.api import quantize_model
from repro.utils.tables import Table, format_float

__all__ = ["Table4Result", "run"]

DEFAULT_MODEL = "opt-2.7b-sim"
MODEL_LABELS = ("WM", "non-WM 1", "non-WM 2", "non-WM 3", "non-WM 4")


@dataclass
class Table4Result:
    """WER of the owner's key against the five integrity models."""

    model_name: str
    bits: int
    wer_by_model: Dict[str, float] = field(default_factory=dict)
    descriptions: Dict[str, str] = field(default_factory=dict)

    def to_table(self) -> Table:
        table = Table(
            title=f"Table 4: integrity evaluation ({self.model_name}, INT{self.bits})",
            columns=["Model", "Description", "WER (%)"],
        )
        for label in MODEL_LABELS:
            if label not in self.wer_by_model:
                continue
            table.add_row(
                [label, self.descriptions.get(label, ""), format_float(self.wer_by_model[label])]
            )
        return table

    def render(self) -> str:
        return self.to_table().render()

    def max_false_positive_wer(self) -> float:
        """Highest WER among the non-watermarked models (should be ≈ 0)."""
        return max(
            (wer for label, wer in self.wer_by_model.items() if label != "WM"), default=0.0
        )


def run(
    model_name: str = DEFAULT_MODEL,
    bits: int = 4,
    profile: str = "default",
    finetune_config: Optional[FineTuneConfig] = None,
) -> Table4Result:
    """Run the integrity evaluation."""
    context = prepare_context(model_name, bits, profile=profile)
    emmark = EmMark(context.emmark_config)
    dataset = context.harness.dataset

    # The owner's watermarked model and key.
    watermarked, key, _ = emmark.insert_with_key(context.fresh_quantized(), context.activations)

    finetune_config = finetune_config or FineTuneConfig()

    def quantize_like_paper(full_precision_model, method: str):
        stats = collect_activation_stats(full_precision_model, dataset.calibration)
        return quantize_model(full_precision_model, method, activations=stats)

    # non-WM 1: the original AWQ-quantized model, never watermarked.
    non_wm_1 = context.fresh_quantized()

    # non-WM 2: fine-tuned on Alpaca-sim before quantization.
    alpaca = load_alpaca_sim(dataset.vocabulary)
    alpaca_model, _ = fine_tune_full_precision(
        context.full_precision, alpaca.as_corpus(), config=finetune_config
    )
    non_wm_2 = quantize_like_paper(alpaca_model, "awq")

    # non-WM 3: fine-tuned on WikiText-sim (the training split) before quantization.
    wikitext_model, _ = fine_tune_full_precision(
        context.full_precision, dataset.train, config=finetune_config
    )
    non_wm_3 = quantize_like_paper(wikitext_model, "awq")

    # non-WM 4: the base model quantized by GPTQ instead of AWQ.
    non_wm_4 = quantize_like_paper(context.full_precision, "gptq")

    result = Table4Result(model_name=model_name, bits=bits)
    candidates = {
        "WM": (watermarked, "EmMark-watermarked, AWQ INT4"),
        "non-WM 1": (non_wm_1, "original AWQ INT4, no watermark"),
        "non-WM 2": (non_wm_2, "Alpaca-sim fine-tune, then AWQ INT4"),
        "non-WM 3": (non_wm_3, "WikiText-sim fine-tune, then AWQ INT4"),
        "non-WM 4": (non_wm_4, "GPTQ INT4, no watermark"),
    }
    for label, (candidate, description) in candidates.items():
        extraction = emmark.extract_with_key(candidate, key)
        result.wer_by_model[label] = extraction.wer_percent
        result.descriptions[label] = description
    return result
