"""Table 2 — watermark insertion efficiency.

The paper reports the average wall-clock time to watermark one quantization
layer (0.4 s for INT8, 0.3 s for INT4 on OPT models) and the additional GPU
memory required (0 GB — EmMark runs entirely on the CPU).  The reproduction
measures the same two quantities on the simulated OPT family: per-layer
insertion time via the :class:`~repro.core.insertion.InsertionReport` and GPU
memory, which is structurally zero because the whole substrate is NumPy on
the CPU.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.emmark import EmMark
from repro.engine import WatermarkEngine
from repro.experiments.common import prepare_context
from repro.utils.tables import Table, format_float

__all__ = ["Table2Row", "Table2Result", "run"]

DEFAULT_MODELS: Sequence[str] = ("opt-125m-sim", "opt-2.7b-sim", "opt-13b-sim")


@dataclass
class Table2Row:
    """Efficiency measurement for one precision.

    ``total_seconds`` is the summed per-layer CPU cost (the paper's metric:
    per-layer time × layers, independent of how many engine workers ran);
    ``wall_clock_seconds`` is the elapsed latency actually observed under the
    parallel engine.
    """

    bits: int
    mean_seconds_per_layer: float
    total_seconds: float
    gpu_memory_gb: float
    num_layers: int
    models: List[str] = field(default_factory=list)
    wall_clock_seconds: float = 0.0


@dataclass
class Table2Result:
    """Both precisions' efficiency rows."""

    rows: List[Table2Row] = field(default_factory=list)

    def to_table(self) -> Table:
        table = Table(
            title="Table 2: EmMark watermarking efficiency",
            columns=[
                "Quantization",
                "Time (s/layer)",
                "CPU total (s)",
                "Wall clock (s)",
                "Memory (GB)",
                "Layers",
            ],
        )
        for row in self.rows:
            table.add_row(
                [
                    f"INT{row.bits}",
                    format_float(row.mean_seconds_per_layer, 4),
                    format_float(row.total_seconds, 3),
                    format_float(row.wall_clock_seconds, 3),
                    format_float(row.gpu_memory_gb, 0),
                    row.num_layers,
                ]
            )
        return table

    def render(self) -> str:
        return self.to_table().render()


def run(
    model_names: Optional[Sequence[str]] = None,
    precisions: Sequence[int] = (8, 4),
    profile: str = "default",
) -> Table2Result:
    """Measure per-layer insertion time and GPU memory for each precision."""
    model_names = list(model_names or DEFAULT_MODELS)
    result = Table2Result()
    for bits in precisions:
        per_layer_times: List[float] = []
        total_times: List[float] = []
        wall_times: List[float] = []
        total_layers = 0
        for model_name in model_names:
            context = prepare_context(model_name, bits, profile=profile)
            # A fresh engine, NOT the shared context engine: earlier
            # experiments in the same process may have warmed the shared
            # plan cache for exactly these (weights, activations, config)
            # fingerprints, which would silently turn this timing run into
            # a cache-lookup measurement.  Table 2 reports cold insertions.
            emmark = EmMark(context.emmark_config, engine=WatermarkEngine())
            _, _, report = emmark.insert_with_key(
                context.fresh_quantized(), context.activations
            )
            per_layer_times.extend(report.per_layer_seconds)
            total_times.append(report.total_seconds)
            wall_times.append(report.wall_clock_seconds)
            total_layers += report.num_layers
        result.rows.append(
            Table2Row(
                bits=bits,
                mean_seconds_per_layer=float(np.mean(per_layer_times)) if per_layer_times else 0.0,
                total_seconds=float(np.sum(total_times)),
                # The entire pipeline is NumPy on the CPU: no GPU memory is
                # allocated at any point, matching the paper's "0 GB".
                gpu_memory_gb=0.0,
                num_layers=total_layers,
                models=list(model_names),
                wall_clock_seconds=float(np.sum(wall_times)),
            )
        )
    return result
