"""Perplexity evaluation on the held-out WikiText-sim split.

Perplexity is the exponential of the mean per-token negative log-likelihood
over fixed-length windows of the evaluation corpus — the standard protocol
used for WikiText in the quantization papers EmMark builds on.  Lower is
better; corrupting salient weights raises it, which is the fidelity signal of
Table 1 and the degradation signal of the attack experiments.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.data.corpus import TokenCorpus
from repro.models.transformer import TransformerLM
from repro.quant.base import QuantizedModel

__all__ = ["compute_perplexity"]

ModelLike = Union[TransformerLM, QuantizedModel]


def _as_transformer(model: ModelLike) -> TransformerLM:
    """Materialize quantized models; pass full-precision models through."""
    if isinstance(model, QuantizedModel):
        return model.materialize()
    return model


def compute_perplexity(
    model: ModelLike,
    corpus: TokenCorpus,
    sequence_length: int = 32,
    max_sequences: Optional[int] = 64,
    batch_size: int = 16,
) -> float:
    """Perplexity of ``model`` on ``corpus``.

    Parameters
    ----------
    model:
        A :class:`TransformerLM` or a :class:`QuantizedModel` (materialized
        automatically).
    corpus:
        Evaluation token stream (use the validation split).
    sequence_length:
        Window length; windows are non-overlapping.
    max_sequences:
        Cap on the number of windows (keeps the evaluation time bounded).
    batch_size:
        Number of windows evaluated per forward pass.

    Returns
    -------
    float
        ``exp(mean negative log-likelihood per token)``.
    """
    transformer = _as_transformer(model)
    windows = corpus.as_matrix(sequence_length, max_sequences)
    if windows.shape[0] == 0:
        raise ValueError(
            "corpus too short for the requested sequence length; "
            f"need at least {sequence_length} tokens"
        )
    total_log_likelihood = 0.0
    total_tokens = 0
    for start in range(0, windows.shape[0], batch_size):
        batch = windows[start : start + batch_size]
        log_probs = transformer.token_log_probs(batch)
        total_log_likelihood += float(log_probs.sum())
        total_tokens += int(log_probs.size)
    mean_nll = -total_log_likelihood / max(total_tokens, 1)
    return float(np.exp(mean_nll))
