"""Evaluation metrics.

The paper reports two model-quality metrics and one watermark metric:

* **Perplexity (PPL)** on WikiText — :mod:`repro.eval.perplexity`.
* **Zero-shot accuracy** as the mean over LAMBADA / HellaSwag / PIQA /
  WinoGrande — :mod:`repro.eval.zero_shot`.
* **Watermark extraction rate (WER)** — computed by
  :mod:`repro.core.extraction` and the baselines themselves.

:mod:`repro.eval.harness` bundles the two quality metrics into a single
:class:`~repro.eval.harness.QualityReport` so every experiment reports them
the same way.
"""

from repro.eval.perplexity import compute_perplexity
from repro.eval.zero_shot import evaluate_task, evaluate_zero_shot
from repro.eval.harness import EvaluationHarness, QualityReport

__all__ = [
    "compute_perplexity",
    "evaluate_task",
    "evaluate_zero_shot",
    "EvaluationHarness",
    "QualityReport",
]
