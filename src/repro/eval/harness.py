"""Shared evaluation harness.

Every experiment needs the same pair of quality numbers — perplexity on the
WikiText-sim validation split and mean zero-shot accuracy on the synthetic
task suite — for many model variants (non-watermarked, watermarked by each
method, attacked at each strength).  :class:`EvaluationHarness` builds the
evaluation data once and hands out :class:`QualityReport` objects, so all
experiments measure quality identically and the benchmarks do not rebuild the
task suite per variant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

from repro.data.corpus import MarkovCorpusGenerator, TokenCorpus
from repro.data.tasks import ZeroShotTask, build_task_suite
from repro.data.wikitext import WikiTextSim, load_wikitext_sim
from repro.eval.perplexity import compute_perplexity
from repro.eval.zero_shot import evaluate_zero_shot
from repro.models.transformer import TransformerLM
from repro.quant.base import QuantizedModel

__all__ = ["QualityReport", "EvaluationHarness"]

ModelLike = Union[TransformerLM, QuantizedModel]


@dataclass(frozen=True)
class QualityReport:
    """Model-quality snapshot: the two metrics of Table 1.

    Attributes
    ----------
    perplexity:
        WikiText-sim validation perplexity (lower is better).
    zero_shot_accuracy:
        Mean zero-shot accuracy in percent (higher is better).
    per_task_accuracy:
        Accuracy per individual task, in percent.
    """

    perplexity: float
    zero_shot_accuracy: float
    per_task_accuracy: dict

    def degradation_from(self, baseline: "QualityReport") -> dict:
        """Signed degradation of this report relative to ``baseline``.

        Positive perplexity delta and negative accuracy delta both mean the
        model got worse (the convention of the paper's ``Δ̄`` column).
        """
        return {
            "perplexity_delta": self.perplexity - baseline.perplexity,
            "zero_shot_delta": self.zero_shot_accuracy - baseline.zero_shot_accuracy,
        }


class EvaluationHarness:
    """Builds the evaluation data once and scores many model variants.

    Parameters
    ----------
    dataset:
        A :class:`~repro.data.wikitext.WikiTextSim` bundle; loaded with the
        default parameters when omitted.
    sequence_length:
        Perplexity window length.
    max_sequences:
        Cap on perplexity windows per evaluation.
    task_seed:
        Seed of the synthetic zero-shot task suite.
    num_task_examples:
        Optional cap on examples per task (speeds up large sweeps).
    """

    def __init__(
        self,
        dataset: Optional[WikiTextSim] = None,
        sequence_length: int = 32,
        max_sequences: int = 48,
        task_seed: int = 7,
        num_task_examples: Optional[int] = None,
    ) -> None:
        self.dataset = dataset or load_wikitext_sim()
        self.sequence_length = int(sequence_length)
        self.max_sequences = int(max_sequences)
        generator = MarkovCorpusGenerator(self.dataset.vocabulary, seed=1234)
        tasks = build_task_suite(generator, seed=task_seed)
        if num_task_examples is not None:
            tasks = [
                ZeroShotTask(name=task.name, examples=task.examples[:num_task_examples])
                for task in tasks
            ]
        self.tasks: List[ZeroShotTask] = tasks

    @property
    def validation_corpus(self) -> TokenCorpus:
        """The held-out corpus used for perplexity."""
        return self.dataset.validation

    @property
    def calibration_corpus(self) -> TokenCorpus:
        """The calibration corpus used for quantization / activation capture."""
        return self.dataset.calibration

    def evaluate(self, model: ModelLike) -> QualityReport:
        """Quality report (perplexity + zero-shot accuracy) for one model."""
        if isinstance(model, QuantizedModel):
            model = model.materialize()
        perplexity = compute_perplexity(
            model,
            self.dataset.validation,
            sequence_length=self.sequence_length,
            max_sequences=self.max_sequences,
        )
        accuracies = evaluate_zero_shot(model, self.tasks)
        return QualityReport(
            perplexity=perplexity,
            zero_shot_accuracy=accuracies["mean"],
            per_task_accuracy={k: v for k, v in accuracies.items() if k != "mean"},
        )
