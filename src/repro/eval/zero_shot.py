"""Zero-shot multiple-choice evaluation.

The protocol follows the LM-eval-harness convention used by the paper: for
each example the model scores every candidate continuation by
length-normalised log-likelihood given the context and predicts the
highest-scoring one; accuracy is the fraction of examples predicted
correctly.  The paper reports the *mean* accuracy across LAMBADA, HellaSwag,
PIQA and WinoGrande; the reproduction reports the mean across their synthetic
counterparts.
"""

from __future__ import annotations

from typing import Dict, Iterable, Union

import numpy as np

from repro.data.tasks import MultipleChoiceExample, ZeroShotTask
from repro.models.transformer import TransformerLM
from repro.quant.base import QuantizedModel

__all__ = ["evaluate_task", "evaluate_zero_shot", "predict_choice"]

ModelLike = Union[TransformerLM, QuantizedModel]


def _as_transformer(model: ModelLike) -> TransformerLM:
    if isinstance(model, QuantizedModel):
        return model.materialize()
    return model


def predict_choice(
    model: TransformerLM, example: MultipleChoiceExample, normalize: bool = True
) -> int:
    """Index of the continuation the model assigns the highest likelihood."""
    scores = [
        model.sequence_log_likelihood(example.context, choice, normalize=normalize)
        for choice in example.choices
    ]
    return int(np.argmax(scores))


def evaluate_task(
    model: ModelLike, task: ZeroShotTask, normalize: bool = True
) -> float:
    """Accuracy (in percent) of ``model`` on one task."""
    transformer = _as_transformer(model)
    if len(task) == 0:
        raise ValueError(f"task {task.name!r} has no examples")
    correct = 0
    for example in task:
        if predict_choice(transformer, example, normalize=normalize) == example.label:
            correct += 1
    return 100.0 * correct / len(task)


def evaluate_zero_shot(
    model: ModelLike, tasks: Iterable[ZeroShotTask], normalize: bool = True
) -> Dict[str, float]:
    """Per-task accuracy plus the paper's headline mean.

    Returns a dictionary with one entry per task name and a ``"mean"`` entry
    averaging them (all values in percent).
    """
    transformer = _as_transformer(model)
    results: Dict[str, float] = {}
    for task in tasks:
        results[task.name] = evaluate_task(transformer, task, normalize=normalize)
    if not results:
        raise ValueError("no tasks supplied")
    results["mean"] = float(np.mean([value for key, value in results.items() if key != "mean"]))
    return results
